"""E09: "Simpler Distributed Programming".

An RPC server whose requests interleave CPU bursts with remote calls,
implemented three ways: hardware thread-per-request (blocking I/O,
near-free transitions), software thread-per-request (every block/wake
pays the scheduler + switch tax), and an event loop (cheap transitions
but run-to-completion). Two sweeps:

1. offered CPU load -- software threads saturate first because the
   transition tax consumes capacity;
2. service-time variability at fixed load -- the event loop's
   head-of-line blocking inflates its tail while hw threads (PS) hold.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.distributed.rpc import (
    EVENT_LOOP,
    HW_THREADS,
    SW_THREADS,
    RpcServerModel,
    RpcWorkload,
)
from repro.experiments.registry import register
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.service import Exponential, LogNormal

DESIGNS = (HW_THREADS, SW_THREADS, EVENT_LOOP)
SEGMENTS = 3
RTT = 15_000
MEAN_SERVICE = 4_000


def _run_cell(design, service, mean_gap: float, requests: int,
              costs: CostModel, seed: int, horizon: int,
              cores: int = 1) -> Dict:
    engine = Engine()
    server = RpcServerModel(engine, design, costs, cores=cores)
    RpcWorkload(engine, server, PoissonArrivals(mean_gap), service,
                RngStreams(seed).stream(f"e09.{design.name}.{mean_gap}"),
                segments=SEGMENTS, rtt_cycles=RTT, max_requests=requests)
    engine.run(until=horizon)
    if server.completed == 0:
        return {"p50": float("inf"), "p99": float("inf"),
                "completed": 0, "goodput": 0.0}
    summary = server.recorder.summary()
    return {
        "p50": summary.p50,
        "p99": summary.p99,
        "completed": server.completed,
        "goodput": server.completed / engine.now * 1e6,  # per Mcycle
    }


@register("E09", "RPC servers: hw threads vs sw threads vs event loop",
          'Section 2, "Simpler Distributed Programming"')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    requests = 200 if quick else 1_500
    loads = (0.4, 0.8) if quick else (0.2, 0.4, 0.6, 0.8, 0.95)
    costs = CostModel()
    result = ExperimentResult(
        "E09", "RPC servers: hw threads vs sw threads vs event loop")

    tax = Table(["design", "per-transition CPU tax (cyc)",
                 "CPU demand/request (cyc)"],
                title=f"Transition overhead ({SEGMENTS} segments, "
                      f"{MEAN_SERVICE}-cycle mean service)")
    for design in DESIGNS:
        overhead = design.transition_overhead_cycles(costs)
        tax.add_row(design.name, overhead,
                    MEAN_SERVICE + SEGMENTS * overhead)
    result.add_table(tax)

    service = Exponential(MEAN_SERVICE)
    load_table = Table(["offered load"]
                       + [f"{d.name} p99" for d in DESIGNS]
                       + [f"{d.name} done" for d in DESIGNS],
                       title=f"p99 latency (cyc) vs offered CPU load "
                             f"({requests} requests/point)")
    load_series: Dict[str, Dict[float, Dict]] = {d.name: {} for d in DESIGNS}
    for load in loads:
        mean_gap = MEAN_SERVICE / load
        horizon = int(requests * mean_gap * 6) + 4 * RTT
        cells = {d.name: _run_cell(d, service, mean_gap, requests, costs,
                                   seed, horizon)
                 for d in DESIGNS}
        for design in DESIGNS:
            load_series[design.name][load] = cells[design.name]
        load_table.add_row(load,
                           *[cells[d.name]["p99"] for d in DESIGNS],
                           *[cells[d.name]["completed"] for d in DESIGNS])
    result.add_table(load_table)

    scvs = (1.0, 8.0) if quick else (0.5, 2.0, 8.0, 16.0)
    var_load = 0.6
    var_table = Table(["service SCV"] + [f"{d.name} p99" for d in DESIGNS],
                      title=f"p99 latency vs service variability "
                            f"(load {var_load})")
    var_series: Dict[str, Dict[float, Dict]] = {d.name: {} for d in DESIGNS}
    for scv in scvs:
        varied = LogNormal(MEAN_SERVICE, scv=scv)
        mean_gap = MEAN_SERVICE / var_load
        horizon = int(requests * mean_gap * 6) + 4 * RTT
        cells = {d.name: _run_cell(d, varied, mean_gap, requests, costs,
                                   seed + 1, horizon)
                 for d in DESIGNS}
        for design in DESIGNS:
            var_series[design.name][scv] = cells[design.name]
        var_table.add_row(scv, *[cells[d.name]["p99"] for d in DESIGNS])
    result.add_table(var_table)

    # scale-out: the blocking thread-per-request model extends to
    # multiple cores by just having more hardware threads runnable --
    # "the scheduler ... will manage the mapping of threads to cores"
    core_counts = (1, 2) if quick else (1, 2, 4)
    overload = 1.6  # offered load beyond one core's capacity
    scale_table = Table(["cores", "p99 (cyc)", "completed"],
                        title=f"hw-threads at offered load {overload} of "
                              f"one core")
    scale_series = {}
    for cores in core_counts:
        mean_gap = MEAN_SERVICE / overload
        horizon = int(requests * mean_gap * 8) + 4 * RTT
        cell = _run_cell(HW_THREADS, service, mean_gap, requests, costs,
                         seed + 2, horizon, cores=cores)
        scale_series[cores] = cell
        scale_table.add_row(cores, cell["p99"], cell["completed"])
    result.add_table(scale_table)

    result.data["load_series"] = load_series
    result.data["var_series"] = var_series
    result.data["scale_series"] = scale_series

    top = loads[-1]
    sw_slower = (load_series["sw-threads"][top]["p99"]
                 > 2 * load_series["hw-threads"][top]["p99"]
                 or load_series["sw-threads"][top]["completed"]
                 < load_series["hw-threads"][top]["completed"])
    result.add_claim(
        "software-thread multiplexing is expensive at load",
        "multiplexing a large number of software threads onto a small "
        "number of hardware threads is expensive",
        f"p99 at load {top}: sw "
        f"{load_series['sw-threads'][top]['p99']:.0f} vs hw "
        f"{load_series['hw-threads'][top]['p99']:.0f} cycles",
        Verdict.SUPPORTED if sw_slower else Verdict.PARTIAL)
    # compared below the saturation knee: at rho -> 1 with SCV = 1, PS
    # mathematically has a heavier tail than FCFS (a queueing fact, not
    # a scheduling-overhead effect; claim 3 covers where PS pays off)
    stable_loads = [ld for ld in loads if ld <= 0.8]
    hw_matches_eventloop = all(
        load_series["hw-threads"][ld]["p99"]
        <= 2.0 * load_series["event-loop"][ld]["p99"]
        and load_series["hw-threads"][ld]["completed"]
        == load_series["event-loop"][ld]["completed"]
        for ld in stable_loads)
    result.add_claim(
        "blocking threads match the event-based model's performance",
        "use simple blocking I/O semantics without suffering from "
        "significant thread scheduling overheads",
        f"equal throughput and p99 within 2x of the event loop at loads "
        f"<= 0.8 (checked: {stable_loads})",
        Verdict.SUPPORTED if hw_matches_eventloop else Verdict.PARTIAL)
    high_scv = scvs[-1]
    hol = (var_series["event-loop"][high_scv]["p99"]
           > var_series["hw-threads"][high_scv]["p99"])
    many = core_counts[-1]
    scales = (scale_series[many]["p99"] < scale_series[1]["p99"]
              or scale_series[many]["completed"]
              > scale_series[1]["completed"])
    result.add_claim(
        "thread-per-request scales out by adding cores, no code change",
        "manage the mapping of threads to cores in order to improve "
        "locality",
        f"p99 at {overload}x one-core load: {scale_series[1]['p99']:.0f} "
        f"(1 core) -> {scale_series[many]['p99']:.0f} ({many} cores)",
        Verdict.SUPPORTED if scales else Verdict.PARTIAL)
    result.add_claim(
        "under high variability the event loop suffers head-of-line "
        "blocking that PS-scheduled threads avoid",
        "PS scheduling with thread-per-request ... superior performance "
        "for server workloads with high execution-time variability",
        f"p99 at SCV {high_scv}: event-loop "
        f"{var_series['event-loop'][high_scv]['p99']:.0f} vs hw "
        f"{var_series['hw-threads'][high_scv]['p99']:.0f} cycles",
        Verdict.SUPPORTED if hol else Verdict.PARTIAL)
    return result
