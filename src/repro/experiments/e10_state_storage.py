"""E10: "Storage for Thread State" -- the paper's capacity arithmetic.

Every number in Section 4's storage discussion, recomputed and checked
against a live :class:`~repro.hw.storage.ThreadStateStore`:

- 272 B base / 784 B full per-thread state;
- a V100-sub-core-sized 64 KiB register file holds 83 (full) to ~240
  (base) contexts, bracketing the paper's "83 to 224";
- 100 cores x 64 KiB = 6.4 MB of register-file space;
- an L2 slice holds tens of contexts, a few MB of L3 hundreds;
- combined, "hundreds to thousands of threads per core".
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.arch.registers import (
    X86_64_BASE_STATE_BYTES,
    X86_64_FULL_STATE_BYTES,
    chip_register_file_bytes,
    register_file_capacity,
)
from repro.experiments.registry import register
from repro.hw.storage import ThreadStateStore


@register("E10", "Thread-state storage arithmetic",
          'Section 4, "Storage for Thread State"')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    result = ExperimentResult("E10", "Thread-state storage arithmetic")

    rf_full = register_file_capacity(64 * 1024, with_vector=True)
    rf_base = register_file_capacity(64 * 1024, with_vector=False)
    chip_bytes = chip_register_file_bytes(100)
    l2_slice_bytes = 128 * 1024          # "a fraction of a 512KB private L2"
    l2_contexts = l2_slice_bytes // X86_64_FULL_STATE_BYTES
    l3_slice_bytes = 2 * 1024 * 1024     # "a few MB of an L3 cache"
    l3_contexts = l3_slice_bytes // X86_64_FULL_STATE_BYTES

    capacity = Table(["storage", "bytes", "contexts (784 B)", "paper"],
                     title="Contexts per storage tier")
    capacity.add_row("64 KiB register file", 64 * 1024, rf_full,
                     "83 to 224 threads")
    capacity.add_row("L2 slice (of 512 KiB)", l2_slice_bytes, l2_contexts,
                     "tens of threads")
    capacity.add_row("L3 slice (few MB)", l3_slice_bytes, l3_contexts,
                     "hundreds of threads")
    result.add_table(capacity)

    chip = Table(["cores", "register-file total", "paper"],
                 title="Chip-level register-file budget")
    chip.add_row(100, f"{chip_bytes / 1024:.0f} KiB", "6.4MB (6400 KB)")
    result.add_table(chip)

    # live store: register more contexts than the RF holds and verify
    # the tiers fill in order with the expected counts
    num_threads = 64 if quick else 512
    store = ThreadStateStore(rf_bytes=16 * 1024, l2_slots=40)
    for ptid in range(num_threads):
        store.register(ptid)
    occupancy = store.occupancy()
    live = Table(["tier", "contexts", "expected"],
                 title=f"Live ThreadStateStore, {num_threads} contexts, "
                       f"16 KiB RF, 40 L2 slots")
    rf_cap = register_file_capacity(16 * 1024, with_vector=True)
    live.add_row("register file", occupancy["rf"], rf_cap)
    live.add_row("L2", occupancy["l2"], min(40, num_threads - rf_cap))
    live.add_row("L3", occupancy["l3"],
                 max(0, num_threads - rf_cap - 40))
    result.add_table(live)

    result.data["rf_full"] = rf_full
    result.data["rf_base"] = rf_base
    result.data["chip_bytes"] = chip_bytes
    result.data["occupancy"] = occupancy
    result.data["per_core_total"] = rf_cap + 40 + occupancy["l3"]

    result.add_claim(
        "a 64 KiB register file stores 83-224 x86-64 contexts",
        "83 to 224 x86-64 threads [27]",
        f"{rf_full} full-state / {rf_base} base-state contexts",
        Verdict.SUPPORTED if rf_full <= 224 and rf_base >= 83
        else Verdict.PARTIAL)
    result.add_claim(
        "100 cores cost 6.4 MB of register-file space",
        "6.4MB in register file space",
        f"{chip_bytes / 1024:.0f} KiB = 6.4 MB at 1000 KB/MB",
        Verdict.SUPPORTED if chip_bytes == 6400 * 1024 else Verdict.REFUTED)
    # capacity claim uses the full-size tiers (the quick-mode live store
    # is deliberately small), cf. the capacity table above
    supports_hundreds = (rf_full + l2_contexts + l3_contexts) >= 100
    result.add_claim(
        "combining the tiers supports hundreds+ threads per core",
        "hundreds to thousands of threads per core in a cost-effective "
        "manner",
        f"tier capacities {rf_full}+{l2_contexts}+{l3_contexts} = "
        f"{rf_full + l2_contexts + l3_contexts} contexts/core",
        Verdict.SUPPORTED if supports_hundreds else Verdict.PARTIAL)
    return result
