"""Device models: the event sources that drive the I/O experiments.

All devices write into the shared simulated :class:`~repro.mem.memory.Memory`
through the DMA engine, so a hardware thread that armed a monitor on a
ring tail (or an MSI-X target word) wakes exactly as the paper
describes -- and a baseline kernel can instead register a legacy
interrupt callback with the same device. One device model, two worlds.

- :mod:`repro.devices.timer` -- the local APIC timer of Section 2/3.1
  ("each core's APIC timer can increment a counter every time a timer
  interrupt is triggered").
- :mod:`repro.devices.nic` -- RX/TX rings, payload DMA, tail-pointer
  doorbells ("a network thread can wait on the RX queue tail until
  packet arrival").
- :mod:`repro.devices.ssd` -- NVMe-style submission/completion queues.
- :mod:`repro.devices.msix` -- legacy-interrupt-to-memory-write
  translation ("hardware must translate external interrupts to memory
  writes (similar to PCIe MSI-x functionality)").
"""

from repro.devices.msix import MsixTranslator
from repro.devices.nic import Nic, RxRing, TxRing
from repro.devices.ssd import Ssd
from repro.devices.timer import ApicTimer

__all__ = [
    "ApicTimer",
    "Nic",
    "RxRing",
    "TxRing",
    "Ssd",
    "MsixTranslator",
]
