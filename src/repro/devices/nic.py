"""The network interface: RX/TX descriptor rings with DMA doorbells.

Paper, Section 3.1: "a network thread can wait on the RX queue tail
until packet arrival"; Section 4: monitoring must cover "addresses
updated by a DMA engine when a new packet arrives in a network
interface".

The RX path is modeled faithfully at ring granularity:

1. A packet "arrives" (per the configured arrival process).
2. The NIC DMAs the payload into the slot's buffer.
3. When the transfer lands it writes the slot descriptor (length word)
   and then increments the *tail counter word* -- the memory write the
   paper's network thread monitors.
4. Optionally it raises an interrupt vector, which an
   :class:`~repro.devices.msix.MsixTranslator` either translates to a
   second memory write or hands to a legacy IDT callback (the baseline).

The consumer advances a *head counter word* as it frees slots; the NIC
drops packets when the ring is full, like real hardware.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, Optional

from repro.errors import ConfigError
from repro.mem.dma import DmaEngine
from repro.mem.memory import WORD_BYTES, Memory
from repro.workloads.arrivals import ArrivalProcess

#: Words per RX descriptor: [length, payload_addr].
DESC_WORDS = 2


class RxRing:
    """Receive ring layout inside simulated memory.

    ``tail_addr`` is the producer counter (written by the NIC);
    ``head_addr`` the consumer counter (written by software). Both are
    free-running; slot = counter % slots.
    """

    def __init__(self, memory: Memory, name: str, slots: int,
                 payload_words: int = 8):
        if slots < 1:
            raise ConfigError(f"ring needs at least one slot, got {slots}")
        if payload_words < 1:
            raise ConfigError("payload must be at least one word")
        self.memory = memory
        self.name = name
        self.slots = slots
        self.payload_words = payload_words
        self.desc = memory.alloc(f"{name}.desc", slots * DESC_WORDS * WORD_BYTES)
        self.buffers = memory.alloc(f"{name}.buf",
                                    slots * payload_words * WORD_BYTES)
        # Tail and head live on separate cache lines so a monitor on the
        # tail is not spuriously woken by the consumer's head updates.
        self.tail_region = memory.alloc(f"{name}.tail", WORD_BYTES)
        self.head_region = memory.alloc(f"{name}.head", WORD_BYTES)

    @property
    def tail_addr(self) -> int:
        return self.tail_region.base

    @property
    def head_addr(self) -> int:
        return self.head_region.base

    def slot_desc_addr(self, index: int) -> int:
        return self.desc.base + (index % self.slots) * DESC_WORDS * WORD_BYTES

    def slot_buffer_addr(self, index: int) -> int:
        return (self.buffers.base
                + (index % self.slots) * self.payload_words * WORD_BYTES)

    # ------------------------------------------------------------------
    # software (consumer) side
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Packets produced but not yet consumed."""
        return (self.memory.load(self.tail_addr)
                - self.memory.load(self.head_addr))

    def consume(self, source: str = "cpu") -> Optional[Dict[str, int]]:
        """Pop one packet (head slot); None when the ring is empty.

        Behavioral-consumer convenience; ISA-level guests do the same
        loads/stores themselves.
        """
        head = self.memory.load(self.head_addr)
        tail = self.memory.load(self.tail_addr)
        if head >= tail:
            return None
        desc_addr = self.slot_desc_addr(head)
        length = self.memory.load(desc_addr)
        payload_addr = self.memory.load(desc_addr + WORD_BYTES)
        self.memory.store(self.head_addr, head + 1, source=source)
        return {"seq": head, "length": length, "payload_addr": payload_addr}


class TxRing:
    """Transmit ring: software writes descriptors, rings the doorbell."""

    def __init__(self, memory: Memory, name: str, slots: int):
        if slots < 1:
            raise ConfigError(f"ring needs at least one slot, got {slots}")
        self.memory = memory
        self.name = name
        self.slots = slots
        self.desc = memory.alloc(f"{name}.desc", slots * DESC_WORDS * WORD_BYTES)
        self.doorbell_region = memory.alloc(f"{name}.doorbell", WORD_BYTES)
        self.completion_region = memory.alloc(f"{name}.comp", WORD_BYTES)

    @property
    def doorbell_addr(self) -> int:
        return self.doorbell_region.base

    @property
    def completion_addr(self) -> int:
        return self.completion_region.base


class Nic:
    """A NIC fed by an arrival process.

    One instance can serve both worlds: arm ``vector`` + a translator
    for memory-write notification, or pass ``legacy_irq`` for the
    baseline IDT path. The packet stream is identical either way, which
    is what makes the E02/E03 comparisons paired.
    """

    def __init__(self, engine, memory: Memory, dma: DmaEngine,
                 name: str = "nic0", rx_slots: int = 256,
                 payload_words: int = 8,
                 wire_latency_cycles: int = 600,
                 translator=None, vector: Optional[int] = None,
                 legacy_irq: Optional[Callable[[int], None]] = None,
                 dispatch: Optional[Callable[[int], None]] = None):
        self.engine = engine
        self.memory = memory
        self.dma = dma
        self.name = name
        self.rx = RxRing(memory, f"{name}.rx", rx_slots, payload_words)
        self.tx = TxRing(memory, f"{name}.tx", rx_slots)
        self.wire_latency_cycles = wire_latency_cycles
        self.translator = translator
        self.vector = vector
        self.legacy_irq = legacy_irq
        # smartNIC offload (Section 4: "associating hardware threads
        # with I/O events could also be transparently offloaded to
        # peripheral devices such as smartNICs"): the device starts the
        # handler ptid itself, skipping even the monitor wakeup.
        self.dispatch = dispatch
        if translator is not None and vector is not None:
            # tail writes already wake tail monitors; the vector gives
            # baseline kernels their interrupt and hw-thread kernels an
            # alternative (coalesced-count) wakeup word
            pass
        self.packets_generated = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self._rx_produced = 0  # device-side cursor: slots claimed at
        #                        arrival time (the memory tail word only
        #                        advances when the DMA lands, so in-flight
        #                        packets must not re-read it)
        self.tx_completed = 0
        self.delivery_time: Dict[int, int] = {}   # seq -> cycles landed
        self.generated_time: Dict[int, int] = {}  # seq -> cycles arrived on wire
        self._stop = False
        # observability: harvested at snapshot time only (no per-packet
        # cost beyond the counters the NIC keeps anyway)
        import repro.obs as obs
        session = obs.active()
        if session is not None:
            session.register_source("dev.nic", self.fill_metrics)
        self._watch_tx()

    def fill_metrics(self, registry, prefix: str) -> None:
        """Snapshot-time metric harvest (see repro.obs.snapshot)."""
        registry.inc(f"{prefix}.packets_generated", self.packets_generated)
        registry.inc(f"{prefix}.packets_delivered", self.packets_delivered)
        registry.inc(f"{prefix}.packets_dropped", self.packets_dropped)
        registry.inc(f"{prefix}.tx_completed", self.tx_completed)

    # ------------------------------------------------------------------
    # RX: packet generation
    # ------------------------------------------------------------------
    def start_rx(self, arrivals: ArrivalProcess, rng: random.Random,
                 max_packets: Optional[int] = None) -> None:
        """Begin delivering packets per ``arrivals`` until stopped."""
        gaps = arrivals.gaps(rng)
        self._stop = False
        self._schedule_next(gaps, max_packets)

    def stop_rx(self) -> None:
        self._stop = True

    def _schedule_next(self, gaps: Iterator[float],
                       remaining: Optional[int]) -> None:
        if self._stop or (remaining is not None and remaining <= 0):
            return
        gap = max(1, int(round(next(gaps))))
        self.engine.after(gap, self._arrive, gaps,
                          None if remaining is None else remaining - 1)

    def _arrive(self, gaps: Iterator[float],
                remaining: Optional[int]) -> None:
        if not self._stop:
            self._deliver_packet()
        self._schedule_next(gaps, remaining)

    def _deliver_packet(self) -> None:
        seq = self.packets_generated
        self.packets_generated += 1
        head = self.memory.load(self.rx.head_addr)
        if self._rx_produced - head >= self.rx.slots:
            self.packets_dropped += 1
            return
        tail = self._rx_produced
        self._rx_produced += 1
        self.generated_time[seq] = self.engine.now
        payload_addr = self.rx.slot_buffer_addr(tail)
        payload = [seq] * self.rx.payload_words
        # payload DMA first; descriptor + tail land when it completes,
        # so a woken consumer always sees complete data
        self.dma.write(payload_addr, payload,
                       on_complete=lambda: self._land(seq, tail, payload_addr),
                       source=f"dma:{self.name}")

    def _land(self, seq: int, tail: int, payload_addr: int) -> None:
        desc_addr = self.rx.slot_desc_addr(tail)
        tag = f"dma:{self.name}"
        self.memory.store(desc_addr, self.rx.payload_words * WORD_BYTES,
                          source=tag)
        self.memory.store(desc_addr + WORD_BYTES, payload_addr, source=tag)
        # the write the paper's network thread monitors
        self.memory.store(self.rx.tail_addr, tail + 1, source=tag)
        self.packets_delivered += 1
        self.delivery_time[seq] = self.engine.now
        if self.dispatch is not None:
            self.dispatch(seq)
        elif self.translator is not None and self.vector is not None:
            self.translator.raise_irq(self.vector)
        elif self.legacy_irq is not None:
            self.legacy_irq(seq)

    # ------------------------------------------------------------------
    # TX: doorbell consumption
    # ------------------------------------------------------------------
    def _watch_tx(self) -> None:
        watch = self.memory.watch_bus.watch(self.tx.doorbell_addr,
                                            owner=f"{self.name}.tx")

        def on_doorbell(_info: dict) -> None:
            self.engine.after(self.wire_latency_cycles, self._tx_complete)
            watch.cancel()
            self._watch_tx()  # re-arm for the next doorbell

        watch.signal.add_waiter(on_doorbell)

    def _tx_complete(self) -> None:
        self.tx_completed += 1
        self.memory.store(self.tx.completion_addr, self.tx_completed,
                          source=f"dma:{self.name}")

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Nic {self.name} delivered={self.packets_delivered}"
                f" dropped={self.packets_dropped}>")
