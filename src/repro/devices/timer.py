"""The local APIC timer.

Paper, Section 3.1: "each core's APIC timer can increment a counter
every time a timer interrupt is triggered. In turn, the hardware thread
hosting the kernel scheduler can monitor/mwait on that memory location."

The model does exactly that: every period it atomically increments a
counter word in simulated memory (waking any monitor on its line). For
baseline comparisons a legacy interrupt callback can be attached; the
same tick then *also* raises a classic IRQ so both worlds observe the
identical event stream.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigError
from repro.mem.memory import Memory


class ApicTimer:
    """A periodic per-core timer that signals via a memory counter."""

    def __init__(self, engine, memory: Memory, counter_addr: int,
                 period_cycles: int, name: str = "apic0",
                 legacy_irq: Optional[Callable[[int], None]] = None,
                 max_ticks: Optional[int] = None):
        if period_cycles < 1:
            raise ConfigError(f"period must be >= 1 cycle, got {period_cycles}")
        self.engine = engine
        self.memory = memory
        self.counter_addr = counter_addr
        self.period_cycles = int(period_cycles)
        self.name = name
        self.legacy_irq = legacy_irq
        self.max_ticks = max_ticks
        self.ticks = 0
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the timer; first tick fires one period from now."""
        if self._running:
            raise ConfigError(f"timer {self.name} already running")
        self._running = True
        self.engine.after(self.period_cycles, self._tick)

    def stop(self) -> None:
        """Stop at the next tick boundary. Idempotent."""
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        # The paper's mechanism: the event trigger is a memory write.
        self.memory.fetch_add(self.counter_addr, 1, source=f"apic:{self.name}")
        if self.legacy_irq is not None:
            self.legacy_irq(self.ticks)
        if self.max_ticks is not None and self.ticks >= self.max_ticks:
            self._running = False
            return
        self.engine.after(self.period_cycles, self._tick)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ApicTimer {self.name} period={self.period_cycles}"
                f" ticks={self.ticks}>")
