"""Interrupt-to-memory-write translation.

Paper, Section 4: "since future hardware should be compatible with
legacy devices, hardware must translate external interrupts to memory
writes (similar to PCIe MSI-x functionality)."

A :class:`MsixTranslator` owns a small table mapping interrupt vectors
to target memory words. A legacy device calls :meth:`raise_irq(vector)`;
the translator performs a memory write to the vector's target address
(waking any monitor there). Untranslated vectors can optionally fall
back to a legacy callback -- the baseline kernel's IDT dispatch -- so
the same device instance serves both worlds.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ConfigError
from repro.mem.memory import Memory


class MsixTranslator:
    """Routes device interrupt vectors to memory writes."""

    def __init__(self, memory: Memory, name: str = "msix",
                 legacy_fallback: Optional[Callable[[int], None]] = None):
        self.memory = memory
        self.name = name
        self.legacy_fallback = legacy_fallback
        self._table: Dict[int, int] = {}
        self.translated = 0
        self.fell_back = 0

    # ------------------------------------------------------------------
    def map_vector(self, vector: int, target_addr: int) -> None:
        """Program the translation table: vector -> memory word."""
        if vector < 0:
            raise ConfigError(f"vector must be non-negative, got {vector}")
        self._table[vector] = target_addr

    def unmap_vector(self, vector: int) -> None:
        self._table.pop(vector, None)

    def target_of(self, vector: int) -> Optional[int]:
        return self._table.get(vector)

    # ------------------------------------------------------------------
    def raise_irq(self, vector: int) -> bool:
        """A device raised ``vector``. Returns True if translated.

        Translated vectors become a fetch-add on the target word (an
        event *count*, so coalesced interrupts are not lost); unmapped
        vectors go to the legacy fallback if one exists.
        """
        target = self._table.get(vector)
        if target is not None:
            self.translated += 1
            self.memory.fetch_add(target, 1, source=f"msix:{self.name}.v{vector}")
            return True
        if self.legacy_fallback is not None:
            self.fell_back += 1
            self.legacy_fallback(vector)
            return False
        raise ConfigError(
            f"vector {vector} unmapped and no legacy fallback configured")

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<MsixTranslator {self.name} vectors={len(self._table)}"
                f" translated={self.translated}>")
