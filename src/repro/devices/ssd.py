"""An NVMe-flavored SSD: submission/completion queue pairs.

Section 1 motivates the proposal with "systems with modern SSDs and
NICs" where per-event context switches dominate. The model:

1. Software writes a submission entry and stores the SQ tail (the
   doorbell -- an ordinary memory write the device watches).
2. After the modeled access latency the SSD DMAs the data (reads are
   the interesting direction) and writes a completion entry, then
   increments the CQ tail word -- the address a completion thread
   monitors in the proposed world, or the trigger for a legacy IRQ in
   the baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ConfigError
from repro.mem.dma import DmaEngine
from repro.mem.memory import WORD_BYTES, Memory

#: Words per submission entry: [opcode, lba, dest_addr, length_words].
SQ_ENTRY_WORDS = 4
#: Words per completion entry: [command_id + 1, status].
CQ_ENTRY_WORDS = 2

OP_READ = 1
OP_WRITE = 2


class Ssd:
    """One SSD with a single SQ/CQ pair."""

    def __init__(self, engine, memory: Memory, dma: DmaEngine,
                 name: str = "ssd0", queue_slots: int = 64,
                 read_latency_cycles: int = 30_000,
                 write_latency_cycles: int = 60_000,
                 translator=None, vector: Optional[int] = None,
                 legacy_irq: Optional[Callable[[int], None]] = None):
        if queue_slots < 1:
            raise ConfigError(f"need at least one queue slot, got {queue_slots}")
        self.engine = engine
        self.memory = memory
        self.dma = dma
        self.name = name
        self.queue_slots = queue_slots
        self.read_latency_cycles = read_latency_cycles
        self.write_latency_cycles = write_latency_cycles
        self.translator = translator
        self.vector = vector
        self.legacy_irq = legacy_irq
        self.sq = memory.alloc(f"{name}.sq",
                               queue_slots * SQ_ENTRY_WORDS * WORD_BYTES)
        self.cq = memory.alloc(f"{name}.cq",
                               queue_slots * CQ_ENTRY_WORDS * WORD_BYTES)
        self.sq_tail_region = memory.alloc(f"{name}.sqtail", WORD_BYTES)
        self.cq_tail_region = memory.alloc(f"{name}.cqtail", WORD_BYTES)
        self.commands_completed = 0
        self.submit_time: Dict[int, int] = {}
        self.complete_time: Dict[int, int] = {}
        self._consumed = 0
        self._watch_doorbell()

    # ------------------------------------------------------------------
    @property
    def sq_tail_addr(self) -> int:
        return self.sq_tail_region.base

    @property
    def cq_tail_addr(self) -> int:
        return self.cq_tail_region.base

    def sq_entry_addr(self, index: int) -> int:
        return self.sq.base + (index % self.queue_slots) * SQ_ENTRY_WORDS * WORD_BYTES

    def cq_entry_addr(self, index: int) -> int:
        return self.cq.base + (index % self.queue_slots) * CQ_ENTRY_WORDS * WORD_BYTES

    # ------------------------------------------------------------------
    # software side: submit a command (behavioral convenience; ISA
    # guests write the same words themselves)
    # ------------------------------------------------------------------
    def submit(self, opcode: int, lba: int, dest_addr: int,
               length_words: int, source: str = "cpu") -> int:
        """Write one submission entry and ring the doorbell.

        Returns the command id (the free-running SQ index).
        """
        if opcode not in (OP_READ, OP_WRITE):
            raise ConfigError(f"bad opcode {opcode}")
        if length_words < 1:
            raise ConfigError("length must be at least one word")
        tail = self.memory.load(self.sq_tail_addr)
        entry = self.sq_entry_addr(tail)
        self.memory.store_words(
            entry, [opcode, lba, dest_addr, length_words], source=source)
        self.memory.store(self.sq_tail_addr, tail + 1, source=source)
        return tail

    # ------------------------------------------------------------------
    # device side
    # ------------------------------------------------------------------
    def _watch_doorbell(self) -> None:
        watch = self.memory.watch_bus.watch(self.sq_tail_addr,
                                            owner=f"{self.name}.sq")

        def on_doorbell(_info: dict) -> None:
            watch.cancel()
            self._drain_sq()
            self._watch_doorbell()

        watch.signal.add_waiter(on_doorbell)

    def _drain_sq(self) -> None:
        tail = self.memory.load(self.sq_tail_addr)
        while self._consumed < tail:
            command_id = self._consumed
            self._consumed += 1
            entry = self.sq_entry_addr(command_id)
            opcode, lba, dest_addr, length = self.memory.load_words(
                entry, SQ_ENTRY_WORDS)
            self.submit_time[command_id] = self.engine.now
            latency = (self.read_latency_cycles if opcode == OP_READ
                       else self.write_latency_cycles)
            self.engine.after(latency, self._access_done,
                              command_id, opcode, lba, dest_addr, length)

    def _access_done(self, command_id: int, opcode: int, lba: int,
                     dest_addr: int, length: int) -> None:
        if opcode == OP_READ:
            # deterministic "media" contents: word i of block lba is lba+i
            data = [lba + i for i in range(length)]
            self.dma.write(dest_addr, data,
                           on_complete=lambda: self._complete(command_id),
                           source=f"dma:{self.name}")
        else:
            self._complete(command_id)

    def _complete(self, command_id: int) -> None:
        tag = f"dma:{self.name}"
        entry = self.cq_entry_addr(command_id)
        self.memory.store_words(entry, [command_id + 1, 0], source=tag)
        self.commands_completed += 1
        self.complete_time[command_id] = self.engine.now
        # the CQ tail word a completion thread monitors
        self.memory.store(self.cq_tail_addr, self.commands_completed,
                          source=tag)
        if self.translator is not None and self.vector is not None:
            self.translator.raise_irq(self.vector)
        elif self.legacy_irq is not None:
            self.legacy_irq(command_id)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Ssd {self.name} completed={self.commands_completed}>"
