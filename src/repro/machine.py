"""Top-level machine assembly: the package's main entry point.

A :class:`Machine` wires together the event engine, clock, memory with
its watch bus, a :class:`~repro.hw.chip.Chip`, tracing, and RNG streams,
and offers the conveniences everything else (examples, experiments,
tests) builds on: allocate memory, assemble and load guest programs,
build TDTs, run the simulation.

    machine = build_machine(cores=1, hw_threads_per_core=64)
    ring = machine.alloc("rx-ring", 4096)
    machine.load_asm(ptid=0, source="...", symbols={"RING": ring.base})
    machine.boot(0)
    machine.run(until=100_000)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.hw.chip import Chip
from repro.hw.core import HWCore
from repro.hw.ptid import HardwareThread
from repro.hw.tdt import Permission, ThreadDescriptorTable
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.mem.dma import DmaEngine
from repro.mem.memory import Memory, Region
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer


@dataclass
class MachineConfig:
    """Knobs for :func:`build_machine`. Defaults follow the paper."""

    cores: int = 1
    hw_threads_per_core: int = 64
    smt_width: int = 2
    freq_ghz: float = 3.0
    rf_bytes: int = 64 * 1024
    memory_bytes: int = 1 << 32
    strict_memory: bool = False
    security_model: str = "tdt"
    issue_policy: str = "rr"  # "rr" | "priority" | "wrr"
    costs: CostModel = field(default_factory=CostModel)
    seed: int = 0xC0FFEE
    trace: bool = False
    #: full observability (metrics registry, per-ptid timelines, cycle
    #: profiler). Also implied for machines built inside an active
    #: repro.obs session. Off: zero cost (the cores run an entirely
    #: uninstrumented issue loop).
    instrument: bool = False
    #: busy-cycle fast-forward (see HWCore._plan_fast_forward); results are
    #: identical either way, only wall-clock differs. The
    #: REPRO_NO_FASTFORWARD env var overrides this to False.
    fast_forward: bool = True
    #: pre-decoded handler-chain execution (repro.isa.decode); results
    #: are identical either way, only wall-clock differs. The
    #: REPRO_NO_PREDECODE env var overrides this to False; an enabled
    #: tracer also falls back to the naive interpreter (the decoded
    #: path skips per-instruction trace emits).
    predecode: bool = True
    #: watch-bus coherence model: None (flat free bus, the seed
    #: behavior), "directory" (MSI directory priced by the CostModel's
    #: dir_* fields), or "null" (directory protocol at zero cost, for
    #: identity audits). The REPRO_COHERENCE env var supplies a value
    #: when this is None.
    coherence: Optional[str] = None

    def validate(self) -> None:
        if self.cores < 1:
            raise ConfigError("cores must be >= 1")
        if self.hw_threads_per_core < 1:
            raise ConfigError("hw_threads_per_core must be >= 1")
        if self.issue_policy not in ("rr", "priority", "wrr"):
            raise ConfigError(
                f"issue_policy must be 'rr', 'priority', or 'wrr', "
                f"got {self.issue_policy!r}")
        if self.coherence is not None:
            from repro.coherence.directory import MODEL_NAMES
            if self.coherence not in MODEL_NAMES:
                raise ConfigError(
                    f"unknown coherence model {self.coherence!r}; known "
                    f"models: {', '.join(MODEL_NAMES)}")


class Machine:
    """A complete simulated system implementing the proposal."""

    def __init__(self, config: MachineConfig,
                 engine: Optional[Engine] = None):
        config.validate()
        self.config = config
        # an injected engine puts this machine on a caller-shared
        # timeline -- how the cluster layer runs one ISA-level machine
        # per node inside a single simulation. Ownership matters to the
        # obs harvest: engine.* counters describe whatever engine hosts
        # the machine, so only an owned engine's totals are simulation
        # facts worth snapshotting (a shared host engine's event count
        # depends on what else runs on it, e.g. which PDES shard).
        self.owns_engine = engine is None
        self.engine = engine if engine is not None else Engine()
        self.clock = Clock(config.freq_ghz)
        self.tracer = Tracer(self.engine, enabled=config.trace)
        self.rngs = RngStreams(config.seed)
        self.memory = Memory(size_bytes=config.memory_bytes,
                             strict=config.strict_memory)
        if config.issue_policy == "priority":
            from repro.hw.issue import PriorityWeightedIssue
            policy_factory = PriorityWeightedIssue
        elif config.issue_policy == "wrr":
            from repro.hw.issue import WeightedRoundRobinIssue
            policy_factory = WeightedRoundRobinIssue
        else:
            policy_factory = None  # Chip defaults to round-robin
        self.chip = Chip(self.engine, self.memory, cores=config.cores,
                         num_ptids=config.hw_threads_per_core,
                         smt_width=config.smt_width, costs=config.costs,
                         security_model=config.security_model,
                         rf_bytes=config.rf_bytes,
                         issue_policy_factory=policy_factory,
                         tracer=self.tracer,
                         fast_forward=config.fast_forward,
                         predecode=config.predecode)
        self.dma = DmaEngine(self.engine, self.memory)
        # observability: instrument when asked to, or when built inside
        # an active obs session (how the CLI instruments experiments).
        # Attaching here -- before the engine ever runs -- is what lets
        # each core's issue loop pick its instrumented body on first
        # dispatch.
        import repro.obs as obs
        session = obs.active()
        self.obs: Optional[obs.MachineObs] = None
        if config.instrument or session is not None:
            registry = session.registry if session is not None \
                else obs.MetricsRegistry()
            self.obs = obs.MachineObs(registry)
            for core in self.chip.cores:
                core.attach_obs(self.obs)
            if session is not None:
                session.register_machine(self)
        # coherence: attach the directory model before anything arms a
        # watch, so its sharer sets mirror the bus from the first
        # monitor on. Registered with the ambient session where the
        # machine lives (a PDES shard worker ships it home per node).
        coherence = config.coherence or os.environ.get("REPRO_COHERENCE")
        self.coherence = None
        if coherence:
            from repro.coherence.directory import DirectoryModel
            self.coherence = DirectoryModel.from_name(
                coherence, costs=config.costs, engine=self.engine)
            self.memory.watch_bus.coherence = self.coherence
            if session is not None:
                session.register_source("coherence.directory",
                                        self.coherence._fill_metrics)

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def costs(self) -> CostModel:
        return self.config.costs

    def core(self, core_id: int = 0) -> HWCore:
        return self.chip.core(core_id)

    def thread(self, ptid: int, core_id: int = 0) -> HardwareThread:
        return self.core(core_id).thread(ptid)

    def alloc(self, name: str, size_bytes: int) -> Region:
        return self.memory.alloc(name, size_bytes)

    # ------------------------------------------------------------------
    # program loading
    # ------------------------------------------------------------------
    def load_asm(self, ptid: int, source: str, core_id: int = 0,
                 symbols: Optional[Dict[str, int]] = None,
                 supervisor: Optional[bool] = None,
                 edp: Optional[int] = None, tdtr: Optional[int] = None,
                 name: Optional[str] = None) -> HardwareThread:
        """Assemble ``source`` and bind it to a ptid."""
        program = assemble(source, name=name or f"ptid{ptid}", symbols=symbols)
        return self.load_program(ptid, program, core_id=core_id,
                                 supervisor=supervisor, edp=edp, tdtr=tdtr)

    def load_program(self, ptid: int, program: Program, core_id: int = 0,
                     supervisor: Optional[bool] = None,
                     edp: Optional[int] = None,
                     tdtr: Optional[int] = None) -> HardwareThread:
        return self.core(core_id).load_program(
            ptid, program, supervisor=supervisor, edp=edp, tdtr=tdtr)

    def boot(self, ptid: int, core_id: int = 0) -> None:
        """Make a ptid runnable at time zero, free of charge."""
        self.core(core_id).boot(ptid)

    def build_tdt(self, name: str,
                  entries: Dict[int, "tuple[int, Permission]"],
                  capacity: int = 64) -> ThreadDescriptorTable:
        """Allocate and populate a memory-resident TDT.

        ``entries`` maps vtid -> (ptid, permissions).
        """
        from repro.hw.tdt import ENTRY_WORDS
        region = self.alloc(name, capacity * ENTRY_WORDS * 8)
        tdt = ThreadDescriptorTable(self.memory, region.base, capacity)
        for vtid, (ptid, perms) in entries.items():
            tdt.set_entry(vtid, ptid, perms)
        return tdt

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Advance the simulation; returns the time reached."""
        time = self.engine.run(until=until, max_events=max_events)
        return time

    def run_seconds(self, seconds: float) -> int:
        return self.run(until=self.engine.now
                        + int(seconds * self.clock.cycles_per_second()))

    def check(self) -> None:
        """Raise TripleFault if any core halted on an unhandled exception."""
        self.chip.check()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """A structured snapshot of the whole machine's counters."""
        per_core = []
        for core in self.chip.cores:
            threads = core.threads
            per_core.append({
                "core_id": core.core_id,
                "instructions": core.instructions_retired,
                "issue_rounds": core.issue_rounds,
                "idle_cycles": core.idle_cycles,
                "halted": core.halted,
                "runnable": core.runnable_count(),
                "wakeups": sum(t.wakeups for t in threads),
                "starts": sum(t.starts for t in threads),
                "stops": sum(t.stops for t in threads),
                "exceptions": sum(t.exceptions_raised for t in threads),
                "storage": core.storage.occupancy(),
            })
        metrics = None
        if self.obs is not None:
            from repro.obs.snapshot import machine_snapshot
            metrics = machine_snapshot(self)
        return {
            "time": self.engine.now,
            "events": self.engine.events_processed,
            "cores": per_core,
            "memory": {
                "loads": self.memory.load_count,
                "stores": self.memory.store_count,
            },
            "watch_bus": {
                "notifications": self.memory.watch_bus.total_notifications,
                "triggers": self.memory.watch_bus.total_triggers,
            },
            "migrations": self.chip.migrations,
            "metrics": metrics,
        }

    def report(self) -> str:
        """The stats rendered as a printable table (debug aid)."""
        from repro.analysis.tables import Table

        snapshot = self.stats()
        table = Table(["core", "instructions", "issue rounds",
                       "idle cycles", "wakeups", "starts", "stops",
                       "exceptions"],
                      title=f"machine @ t={snapshot['time']}"
                            f" ({snapshot['events']} events)")
        for core in snapshot["cores"]:
            table.add_row(core["core_id"], core["instructions"],
                          core["issue_rounds"], core["idle_cycles"],
                          core["wakeups"], core["starts"], core["stops"],
                          core["exceptions"])
        rendered = table.render()
        if snapshot["metrics"] is not None:
            from repro.obs.profile import BUCKETS
            profile_table = Table(["core"] + list(BUCKETS) + ["total"],
                                  title="cycle attribution")
            for name, buckets in snapshot["metrics"]["profile"].items():
                profile_table.add_row(
                    name, *[buckets[b] for b in BUCKETS], buckets["total"])
            rendered += "\n" + profile_table.render()
        return rendered

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Machine cores={self.config.cores}"
                f" ptids/core={self.config.hw_threads_per_core}"
                f" t={self.engine.now}>")


def build_machine(cores: int = 1, hw_threads_per_core: int = 64,
                  engine: Optional[Engine] = None,
                  **overrides) -> Machine:
    """Build a machine with keyword overrides for any config field.

    ``engine`` (optional) shares a caller-owned event engine instead of
    creating a private one.
    """
    config = MachineConfig(cores=cores,
                           hw_threads_per_core=hw_threads_per_core,
                           **overrides)
    return Machine(config, engine=engine)
