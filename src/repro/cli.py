"""Command-line interface: ``python -m repro``.

Subcommands:

- ``list`` -- the registered experiments with their paper anchors;
- ``run E03 [--quick] [--trace out.json] [--metrics out.json]`` -- one
  experiment, optionally with a Perfetto trace and a metrics snapshot;
- ``evaluate [--quick] [--markdown] [--metrics DIR] [--spans DIR]`` --
  the full E01-E18 evaluation, optionally writing one metrics snapshot
  per experiment and the traced experiments' span-tree artifacts;
- ``cluster [--nodes N] [--design D] [--policy P] [--fanout F]`` -- one
  multi-machine cluster run (see :mod:`repro.cluster`) with its summary
  table, optionally traced/snapshotted like ``run``;
- ``trace [--top K]`` -- run one traced cluster and pretty-print the K
  slowest requests' span trees with per-component percentages
  (:mod:`repro.obs.spans`);
- ``profile E03`` -- the cycle-attribution profile of one experiment;
- ``sensitivity`` -- the cost-model break-even analysis.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Behavioral reproduction of 'A Case Against (Most) "
                    "Context Switches' (HotOS '21)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list the registered experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", help="e.g. E03")
    run.add_argument("--quick", action="store_true",
                     help="small CI-sized workloads")
    run.add_argument("--seed", type=lambda v: int(v, 0), default=0xC0FFEE)
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="emit structured JSON instead of tables")
    run.add_argument("--trace", metavar="FILE", default=None,
                     dest="trace_path",
                     help="export a Perfetto/Chrome trace-event JSON of "
                          "the run (open in ui.perfetto.dev)")
    run.add_argument("--metrics", metavar="FILE", default=None,
                     dest="metrics_path",
                     help="write the run's metrics snapshot as JSON")
    run.add_argument("--span-trace", metavar="FILE", default=None,
                     dest="span_trace_path",
                     help="export the experiment's retained span trees "
                          "as Perfetto trace-event JSON (traced "
                          "experiments only, e.g. E16)")
    run.add_argument("--spans", metavar="FILE", default=None,
                     dest="spans_path",
                     help="write the experiment's retained span trees "
                          "as plain JSON (traced experiments only)")

    evaluate = sub.add_parser("evaluate", help="run every experiment")
    evaluate.add_argument("--quick", action="store_true")
    evaluate.add_argument("--markdown", action="store_true",
                          help="emit EXPERIMENTS.md sections")
    evaluate.add_argument("--parallel", type=int, default=1, metavar="N",
                          help="fan experiments across N worker processes "
                               "(results are identical to serial; 0 = one "
                               "per CPU)")
    evaluate.add_argument("--metrics", metavar="DIR", default=None,
                          dest="metrics_dir",
                          help="write one metrics-snapshot JSON per "
                               "experiment into DIR")
    evaluate.add_argument("--spans", metavar="DIR", default=None,
                          dest="spans_dir",
                          help="write the traced experiments' span-tree "
                               "exemplars into DIR (JSON + Perfetto "
                               "trace per experiment)")

    cluster = sub.add_parser(
        "cluster",
        help="simulate a multi-machine cluster (load balancing, "
             "fan-out, hedged requests)")
    cluster.add_argument("--nodes", type=int, default=8)
    cluster.add_argument("--design", default="hw-threads",
                         help="hw-threads | sw-threads | event-loop, "
                              "or 'all' to compare the three")
    cluster.add_argument("--backend", default="model",
                         help="server backend per node: 'model' "
                              "(behavioral RpcServerModel) or 'isa' "
                              "(full ISA-level machine)")
    cluster.add_argument("--policy", default="round-robin",
                         help="random | round-robin | jsq | p2c")
    cluster.add_argument("--fanout", type=int, default=1,
                         help="shards per request (response = slowest)")
    cluster.add_argument("--load", type=float, default=0.6,
                         help="offered load per node of the base service")
    cluster.add_argument("--requests", type=int, default=500)
    cluster.add_argument("--queue-limit", type=int, default=None,
                         help="per-node admission limit (default: none)")
    cluster.add_argument("--hedge-after", type=int, default=None,
                         metavar="CYCLES",
                         help="send a hedged shard after this many cycles")
    cluster.add_argument("--shards", type=int, default=1,
                         help="partition the run over N engine shards "
                              "(conservative PDES; byte-identical output)")
    cluster.add_argument("--shard-transport", default="process",
                         choices=("process", "inline"),
                         help="shard workers as processes (parallel) or "
                              "inline (debug)")
    cluster.add_argument("--drop-prob", type=float, default=0.0,
                         help="per-message link drop probability")
    cluster.add_argument("--seed", type=lambda v: int(v, 0),
                         default=0xC0FFEE)
    cluster.add_argument("--json", action="store_true", dest="as_json")
    cluster.add_argument("--trace", metavar="FILE", default=None,
                         dest="trace_path",
                         help="export a Perfetto/Chrome trace-event JSON")
    cluster.add_argument("--metrics", metavar="FILE", default=None,
                         dest="metrics_path",
                         help="write the run's metrics snapshot as JSON")
    cluster.add_argument("--span-trace", metavar="FILE", default=None,
                         dest="span_trace_path",
                         help="trace every request and export the "
                              "retained span trees as Perfetto "
                              "trace-event JSON")

    trace = sub.add_parser(
        "trace",
        help="run one traced cluster and pretty-print the slowest "
             "requests' span trees (critical-path decomposition)")
    trace.add_argument("--top", type=int, default=5, metavar="K",
                       help="render the K slowest requests (default 5)")
    trace.add_argument("--nodes", type=int, default=8)
    trace.add_argument("--design", default="sw-threads",
                       help="hw-threads | sw-threads | event-loop")
    trace.add_argument("--backend", default="model",
                       help="'model' or 'isa'")
    trace.add_argument("--policy", default="round-robin",
                       help="random | round-robin | jsq | p2c")
    trace.add_argument("--fanout", type=int, default=1)
    trace.add_argument("--load", type=float, default=0.6)
    trace.add_argument("--requests", type=int, default=500)
    trace.add_argument("--queue-limit", type=int, default=None)
    trace.add_argument("--hedge-after", type=int, default=None,
                       metavar="CYCLES")
    trace.add_argument("--shards", type=int, default=1)
    trace.add_argument("--shard-transport", default="process",
                       choices=("process", "inline"))
    trace.add_argument("--seed", type=lambda v: int(v, 0),
                       default=0xC0FFEE)
    trace.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the full span payload as JSON instead "
                            "of rendered trees")
    trace.add_argument("--span-trace", metavar="FILE", default=None,
                       dest="span_trace_path",
                       help="also export the trees as Perfetto "
                            "trace-event JSON")

    profile = sub.add_parser("profile",
                             help="cycle-attribution profile of one "
                                  "experiment (issue/stall/mwait/"
                                  "fastforward/idle per core)")
    profile.add_argument("experiment_id", help="e.g. E03")
    profile.add_argument("--quick", action="store_true",
                         help="small CI-sized workloads")
    profile.add_argument("--seed", type=lambda v: int(v, 0),
                         default=0xC0FFEE)

    sub.add_parser("sensitivity",
                   help="cost-model break-even analysis")

    sub.add_parser("isa", help="the simulated ISA, instruction by "
                               "instruction")
    return parser


def _cmd_list() -> int:
    from repro.analysis.tables import Table
    from repro.experiments import all_experiments

    table = Table(["id", "title", "paper anchor"])
    for experiment in all_experiments():
        table.add_row(experiment.experiment_id, experiment.title,
                      experiment.paper_anchor)
    print(table.render())
    return 0


def _write_span_trace(path: str, trees) -> None:
    """``trees`` is ``[(label, tree), ...]`` span trees."""
    from repro.obs.export import span_trace, write_trace

    write_trace(path, span_trace(trees))
    print(f"span trace written to {path} (open in ui.perfetto.dev)",
          file=sys.stderr)


def _cmd_run(experiment_id: str, quick: bool, seed: int,
             as_json: bool = False, trace_path: Optional[str] = None,
             metrics_path: Optional[str] = None,
             span_trace_path: Optional[str] = None,
             spans_path: Optional[str] = None) -> int:
    from repro.errors import ReproError
    from repro.experiments import get_experiment

    try:
        experiment = get_experiment(experiment_id.upper())
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if trace_path or metrics_path:
        # run inside an obs session: every machine the experiment builds
        # instruments itself and lands in the session
        import repro.obs as obs

        with obs.session(experiment.experiment_id) as sess:
            result = experiment.run(quick=quick, seed=seed)
        if trace_path:
            from repro.obs.export import write_trace
            write_trace(trace_path, sess.chrome_trace())
            print(f"trace written to {trace_path} "
                  f"(open in ui.perfetto.dev)", file=sys.stderr)
        if metrics_path:
            from repro.obs.snapshot import write_snapshot
            write_snapshot(metrics_path, sess.snapshot())
            print(f"metrics snapshot written to {metrics_path}",
                  file=sys.stderr)
    else:
        result = experiment.run(quick=quick, seed=seed)
    if span_trace_path or spans_path:
        import json

        from repro.experiments.parallel import span_artifacts

        trees = span_artifacts([result]).get(experiment.experiment_id)
        if not trees:
            print(f"error: {experiment.experiment_id} publishes no span "
                  f"trees; only traced experiments (e.g. E16) support "
                  f"--span-trace/--spans", file=sys.stderr)
            return 2
        if spans_path:
            with open(spans_path, "w", encoding="utf-8") as handle:
                json.dump(trees, handle, indent=1, sort_keys=True)
                handle.write("\n")
            print(f"span trees written to {spans_path}", file=sys.stderr)
        if span_trace_path:
            _write_span_trace(span_trace_path,
                              [(t["label"], t["tree"]) for t in trees])
    print(result.to_json() if as_json else result.render())
    return 0 if result.all_supported() else 1


def _cmd_profile(experiment_id: str, quick: bool, seed: int) -> int:
    from repro.analysis.tables import Table
    from repro.errors import ReproError
    from repro.experiments import get_experiment
    from repro.obs.profile import BUCKETS
    import repro.obs as obs

    try:
        experiment = get_experiment(experiment_id.upper())
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    with obs.session(experiment.experiment_id) as sess:
        experiment.run(quick=quick, seed=seed)
    totals = {bucket: 0 for bucket in BUCKETS}
    grand = 0
    cores = 0
    for machine in sess.machines:
        profiles = machine.obs.profiler.snapshot(machine.engine.now)
        for buckets in profiles.values():
            cores += 1
            grand += buckets["total"]
            for bucket in BUCKETS:
                totals[bucket] += buckets[bucket]
    table = Table(["bucket", "cycles", "share"],
                  title=f"{experiment.experiment_id} cycle attribution "
                        f"({cores} cores over {len(sess.machines)} "
                        f"machines)")
    for bucket in BUCKETS:
        share = totals[bucket] / grand if grand else 0.0
        table.add_row(bucket, totals[bucket], f"{share:7.2%}")
    table.add_row("total", grand, f"{1:7.2%}" if grand else f"{0:7.2%}")
    print(table.render())
    # snapshot() raises if any core's buckets fail to sum to engine.now
    print("attribution exact: buckets sum to engine.now on every core")
    return 0


def _cmd_isa() -> int:
    from repro.analysis.tables import Table
    from repro.isa.instructions import OPS

    table = Table(["opcode", "operands", "latency", "description"])
    for spec in OPS.values():
        table.add_row(spec.name, " ".join(spec.operands) or "-",
                      spec.latency, spec.description)
    print(table.render())
    return 0


def _cmd_evaluate(quick: bool, markdown: bool, parallel: int = 1,
                  metrics_dir: Optional[str] = None,
                  spans_dir: Optional[str] = None) -> int:
    import json
    import os

    from repro.errors import ReproError
    from repro.experiments.parallel import run_instrumented, run_parallel

    workers = None if parallel == 0 else parallel
    try:
        if metrics_dir is not None:
            from repro.obs.snapshot import write_snapshot

            run = run_instrumented(quick=quick, workers=workers)
            results = run.results
            os.makedirs(metrics_dir, exist_ok=True)
            for experiment_id, snapshot in run.snapshots.items():
                path = os.path.join(metrics_dir,
                                    f"{experiment_id}-metrics.json")
                write_snapshot(path, snapshot)
            print(f"{len(run.snapshots)} metrics snapshots written to "
                  f"{metrics_dir}", file=sys.stderr)
        else:
            results = run_parallel(quick=quick, workers=workers)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if spans_dir is not None:
        from repro.experiments.parallel import span_artifacts
        from repro.obs.export import span_trace, write_trace

        artifacts = span_artifacts(results)
        os.makedirs(spans_dir, exist_ok=True)
        for experiment_id, trees in artifacts.items():
            path = os.path.join(spans_dir, f"{experiment_id}-spans.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(trees, handle, indent=1, sort_keys=True)
                handle.write("\n")
            write_trace(
                os.path.join(spans_dir,
                             f"{experiment_id}-spans.trace.json"),
                span_trace([(t["label"], t["tree"]) for t in trees]))
        print(f"span artifacts for {len(artifacts)} traced experiments "
              f"written to {spans_dir}", file=sys.stderr)
    failures: List[str] = []
    for result in results:
        print(result.render_markdown() if markdown else result.render())
        print()
        if not result.all_supported():
            failures.append(result.experiment_id)
    if failures:
        print(f"REFUTED claims in: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def _cmd_cluster(args) -> int:
    import json
    from contextlib import nullcontext

    import repro.obs.spans as spans
    from repro.analysis.tables import Table
    from repro.cluster import (
        DESIGNS,
        ClusterConfig,
        LinkSpec,
        get_design,
        run_cluster,
    )
    from repro.errors import ReproError

    names = (list(DESIGNS) if args.design == "all"
             else [args.design])
    summaries = {}
    span_trees = []
    try:
        for name in names:
            config = ClusterConfig(
                nodes=args.nodes, design=get_design(name),
                policy=args.policy, fanout=args.fanout, load=args.load,
                requests=args.requests, queue_limit=args.queue_limit,
                hedge_after=args.hedge_after,
                link=LinkSpec(drop_prob=args.drop_prob),
                backend=args.backend, shards=args.shards)
            tracing = (spans.tracing() if args.span_trace_path
                       else nullcontext(None))
            with tracing as store:
                if args.trace_path or args.metrics_path:
                    import repro.obs as obs

                    with obs.session(f"cluster.{name}") as sess:
                        result = run_cluster(
                            config, seed=args.seed,
                            transport=args.shard_transport)
                    if args.trace_path:
                        from repro.obs.export import write_trace
                        write_trace(args.trace_path, sess.chrome_trace())
                        print(f"trace written to {args.trace_path} "
                              f"(open in ui.perfetto.dev)",
                              file=sys.stderr)
                    if args.metrics_path:
                        from repro.obs.snapshot import write_snapshot
                        write_snapshot(args.metrics_path, sess.snapshot())
                        print(f"metrics snapshot written to "
                              f"{args.metrics_path}", file=sys.stderr)
                else:
                    result = run_cluster(config, seed=args.seed,
                                         transport=args.shard_transport)
            if store is not None:
                span_trees.extend((name, tree)
                                  for tree in store.exemplars())
            summaries[name] = result.summary
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.span_trace_path:
        _write_span_trace(args.span_trace_path, span_trees)
    if args.as_json:
        print(json.dumps(summaries, indent=1, sort_keys=True))
    else:
        columns = ["design", "completed", "dropped", "rejected", "hedges",
                   "p50", "p99", "goodput/Mcyc", "conserved"]
        table = Table(columns,
                      title=f"{args.nodes} nodes, {args.policy}, fanout "
                            f"{args.fanout}, load {args.load}")
        def quantile(value: float):
            # completed == 0 leaves the quantiles at +inf
            return round(value) if value != float("inf") else "inf"

        for name, summary in summaries.items():
            table.add_row(name, summary["completed"], summary["dropped"],
                          summary["rejected"], summary["hedges"],
                          quantile(summary["p50"]),
                          quantile(summary["p99"]),
                          round(summary["goodput_per_mcycle"], 3),
                          summary["conserved"])
        print(table.render())
    ok = all(summary["conserved"] for summary in summaries.values())
    return 0 if ok else 1


def _cmd_trace(args) -> int:
    import json

    import repro.obs.spans as spans
    from repro.cluster import ClusterConfig, get_design, run_cluster
    from repro.errors import ReproError

    if args.top < 1:
        print(f"error: --top must be >= 1, got {args.top}",
              file=sys.stderr)
        return 2
    try:
        config = ClusterConfig(
            nodes=args.nodes, design=get_design(args.design),
            policy=args.policy, fanout=args.fanout, load=args.load,
            requests=args.requests, queue_limit=args.queue_limit,
            hedge_after=args.hedge_after, backend=args.backend,
            shards=args.shards)
        with spans.tracing(top_k=args.top) as store:
            run_cluster(config, seed=args.seed,
                        transport=args.shard_transport)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(store.payload(), indent=1, sort_keys=True))
    else:
        trees = sorted(store.exemplars(),
                       key=lambda tree: (-(tree["latency"] or 0),
                                         tree["request_id"]))
        for tree in trees[:args.top]:
            print(spans.render_tree(tree))
            print()
        completed = store.paths()
        if completed:
            p50 = store.percentile_request(50.0)["latency"]
            p99 = store.percentile_request(99.0)["latency"]
            print(f"{len(completed)} completed requests traced; "
                  f"p50 {p50:,} / p99 {p99:,} cycles")
        else:
            print("no completed requests were traced")
    if args.span_trace_path:
        _write_span_trace(args.span_trace_path,
                          [(args.design, tree)
                           for tree in store.exemplars()])
    return 0


def _cmd_sensitivity() -> int:
    from repro.experiments.sensitivity import sensitivity_table

    print(sensitivity_table().render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args.experiment_id, args.quick, args.seed,
                            args.as_json, args.trace_path,
                            args.metrics_path, args.span_trace_path,
                            args.spans_path)
        if args.command == "evaluate":
            return _cmd_evaluate(args.quick, args.markdown, args.parallel,
                                 args.metrics_dir, args.spans_dir)
        if args.command == "cluster":
            return _cmd_cluster(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "profile":
            return _cmd_profile(args.experiment_id, args.quick, args.seed)
        if args.command == "sensitivity":
            return _cmd_sensitivity()
        if args.command == "isa":
            return _cmd_isa()
        parser.print_help()
        return 0
    except BrokenPipeError:
        # output piped into a pager/head that closed early; not an error
        try:
            sys.stdout.close()
        except Exception:  # noqa: BLE001 - best-effort flush
            pass
        return 0
