"""Command-line interface: ``python -m repro``.

Subcommands:

- ``list`` -- the registered experiments with their paper anchors;
- ``run E03 [--quick]`` -- one experiment, tables + claims printed;
- ``evaluate [--quick] [--markdown]`` -- the full E01-E13 evaluation;
- ``sensitivity`` -- the cost-model break-even analysis.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Behavioral reproduction of 'A Case Against (Most) "
                    "Context Switches' (HotOS '21)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list the registered experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", help="e.g. E03")
    run.add_argument("--quick", action="store_true",
                     help="small CI-sized workloads")
    run.add_argument("--seed", type=lambda v: int(v, 0), default=0xC0FFEE)
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="emit structured JSON instead of tables")

    evaluate = sub.add_parser("evaluate", help="run every experiment")
    evaluate.add_argument("--quick", action="store_true")
    evaluate.add_argument("--markdown", action="store_true",
                          help="emit EXPERIMENTS.md sections")
    evaluate.add_argument("--parallel", type=int, default=1, metavar="N",
                          help="fan experiments across N worker processes "
                               "(results are identical to serial; 0 = one "
                               "per CPU)")

    sub.add_parser("sensitivity",
                   help="cost-model break-even analysis")

    sub.add_parser("isa", help="the simulated ISA, instruction by "
                               "instruction")
    return parser


def _cmd_list() -> int:
    from repro.analysis.tables import Table
    from repro.experiments import all_experiments

    table = Table(["id", "title", "paper anchor"])
    for experiment in all_experiments():
        table.add_row(experiment.experiment_id, experiment.title,
                      experiment.paper_anchor)
    print(table.render())
    return 0


def _cmd_run(experiment_id: str, quick: bool, seed: int,
             as_json: bool = False) -> int:
    from repro.errors import ReproError
    from repro.experiments import get_experiment

    try:
        experiment = get_experiment(experiment_id.upper())
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    result = experiment.run(quick=quick, seed=seed)
    print(result.to_json() if as_json else result.render())
    return 0 if result.all_supported() else 1


def _cmd_isa() -> int:
    from repro.analysis.tables import Table
    from repro.isa.instructions import OPS

    table = Table(["opcode", "operands", "latency", "description"])
    for spec in OPS.values():
        table.add_row(spec.name, " ".join(spec.operands) or "-",
                      spec.latency, spec.description)
    print(table.render())
    return 0


def _cmd_evaluate(quick: bool, markdown: bool, parallel: int = 1) -> int:
    from repro.errors import ReproError
    from repro.experiments.parallel import run_parallel

    try:
        results = run_parallel(quick=quick,
                               workers=None if parallel == 0 else parallel)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    failures: List[str] = []
    for result in results:
        print(result.render_markdown() if markdown else result.render())
        print()
        if not result.all_supported():
            failures.append(result.experiment_id)
    if failures:
        print(f"REFUTED claims in: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def _cmd_sensitivity() -> int:
    from repro.experiments.sensitivity import sensitivity_table

    print(sensitivity_table().render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args.experiment_id, args.quick, args.seed,
                            args.as_json)
        if args.command == "evaluate":
            return _cmd_evaluate(args.quick, args.markdown, args.parallel)
        if args.command == "sensitivity":
            return _cmd_sensitivity()
        if args.command == "isa":
            return _cmd_isa()
        parser.print_help()
        return 0
    except BrokenPipeError:
        # output piped into a pager/head that closed early; not an error
        try:
            sys.stdout.close()
        except Exception:  # noqa: BLE001 - best-effort flush
            pass
        return 0
