"""Per-hardware-thread architectural state.

An :class:`ArchState` is the register context stored in the thread-state
storage hierarchy and manipulated remotely by ``rpull``/``rpush``. It is
deliberately a plain mutable object: the *hardware* semantics (who may
read/write which register, and when) are enforced by :mod:`repro.hw`,
not here.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional

from repro.arch.registers import (
    GPR_COUNT,
    RegisterClass,
    RegisterSpec,
    register_specs,
    state_bytes,
)
from repro.errors import IsaError


class ControlRegister(str, enum.Enum):
    """Symbolic names for non-GPR registers addressable by rpull/rpush."""

    PC = "pc"
    FLAGS = "flags"
    EDP = "edp"      # exception descriptor pointer (novel, per the paper)
    TDTR = "tdtr"    # thread descriptor table register (novel)
    PRIV = "priv"    # privilege mode: 1 = supervisor, 0 = user


class ArchState:
    """One thread's registers: GPRs, pc, flags, control, vector.

    ``vector_dirty`` tracks whether the thread has touched vector/FP
    registers; it drives the 272-vs-784-byte footprint (Section 2,
    "Access to All Registers in the Kernel").
    """

    __slots__ = ("gprs", "pc", "flags", "edp", "tdtr", "priv",
                 "vectors", "vector_dirty", "_specs")

    def __init__(self, gpr_count: int = GPR_COUNT, vector_count: int = 16,
                 supervisor: bool = False):
        self.gprs: List[int] = [0] * gpr_count
        self.pc: int = 0
        self.flags: int = 0
        self.edp: int = 0
        self.tdtr: int = 0
        self.priv: int = 1 if supervisor else 0
        self.vectors: List[int] = [0] * vector_count
        self.vector_dirty: bool = False
        # shared frozen map -- never mutated through this reference
        self._specs: Dict[str, RegisterSpec] = register_specs(
            gpr_count, vector_count)

    # ------------------------------------------------------------------
    # named access (used by rpull/rpush and the interpreter)
    # ------------------------------------------------------------------
    def read(self, name: str) -> int:
        """Read a register by name ('r3', 'pc', 'edp', 'v0', ...)."""
        if name.startswith("r") and name[1:].isdigit():
            return self.gprs[self._gpr_index(name)]
        if name.startswith("v") and name[1:].isdigit():
            return self.vectors[self._vec_index(name)]
        if name == "pc":
            return self.pc
        if name == "flags":
            return self.flags
        if name == "edp":
            return self.edp
        if name == "tdtr":
            return self.tdtr
        if name == "priv":
            return self.priv
        raise IsaError(f"unknown register {name!r}")

    def write(self, name: str, value: int) -> None:
        """Write a register by name. No permission checks here."""
        value = int(value)
        if name.startswith("r") and name[1:].isdigit():
            self.gprs[self._gpr_index(name)] = value
        elif name.startswith("v") and name[1:].isdigit():
            self.vectors[self._vec_index(name)] = value
            self.vector_dirty = True
        elif name == "pc":
            self.pc = value
        elif name == "flags":
            self.flags = value
        elif name == "edp":
            self.edp = value
        elif name == "tdtr":
            self.tdtr = value
        elif name == "priv":
            self.priv = 1 if value else 0
        else:
            raise IsaError(f"unknown register {name!r}")

    def register_class(self, name: str) -> RegisterClass:
        """Permission class of a named register (for TDT checks)."""
        spec = self._specs.get(name)
        if spec is None:
            raise IsaError(f"unknown register {name!r}")
        return spec.reg_class

    def register_names(self) -> Iterable[str]:
        return self._specs.keys()

    # ------------------------------------------------------------------
    @property
    def supervisor(self) -> bool:
        return bool(self.priv)

    def footprint_bytes(self) -> int:
        """Bytes this context occupies in thread-state storage."""
        return state_bytes(with_vector=self.vector_dirty)

    def snapshot(self) -> Dict[str, int]:
        """Copy of all register values, for save/compare in tests."""
        snap = {f"r{i}": v for i, v in enumerate(self.gprs)}
        snap.update(pc=self.pc, flags=self.flags, edp=self.edp,
                    tdtr=self.tdtr, priv=self.priv)
        snap.update({f"v{i}": v for i, v in enumerate(self.vectors)})
        return snap

    def load_snapshot(self, snap: Dict[str, int]) -> None:
        for name, value in snap.items():
            self.write(name, value)

    def reset(self, pc: int = 0, supervisor: Optional[bool] = None) -> None:
        """Clear all state, optionally changing the privilege mode."""
        self.gprs = [0] * len(self.gprs)
        self.vectors = [0] * len(self.vectors)
        self.pc = pc
        self.flags = 0
        self.edp = 0
        self.tdtr = 0
        self.vector_dirty = False
        if supervisor is not None:
            self.priv = 1 if supervisor else 0

    # ------------------------------------------------------------------
    def _gpr_index(self, name: str) -> int:
        index = int(name[1:])
        if not 0 <= index < len(self.gprs):
            raise IsaError(f"GPR {name!r} out of range (have {len(self.gprs)})")
        return index

    def _vec_index(self, name: str) -> int:
        index = int(name[1:])
        if not 0 <= index < len(self.vectors):
            raise IsaError(f"vector reg {name!r} out of range")
        return index

    def __repr__(self) -> str:  # pragma: no cover
        mode = "sup" if self.priv else "usr"
        return f"<ArchState pc={self.pc:#x} {mode} fp={'y' if self.vector_dirty else 'n'}>"
