"""The cost model: every latency constant in one auditable place.

Each field cites the sentence of the paper (or the paper's own citation)
that motivates its default. The experiments never hard-code latencies;
they read them from a :class:`CostModel`, so sensitivity studies are a
matter of constructing variants (see :meth:`CostModel.scaled`).

All values are CPU cycles at the paper's reference 3 GHz clock
(1 ns = 3 cycles).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Latency constants for both worlds (baseline and proposed).

    Baseline (context-switching) world
    ----------------------------------
    mode_switch_cycles
        Trap into the kernel and back within one hardware thread
        (syscall/sysret plus the state management around it). Paper,
        Section 2: "the state management necessary when switching
        privilege levels within a hardware thread can take hundreds of
        cycles [46, 69]". Direct cost; cache/TLB pollution is separate.
    sw_switch_cycles
        Software thread switch in the same privilege level: register
        save/restore and kernel bookkeeping. Paper, Section 1: "Even
        switching between software threads in the same protection level
        incurs hundreds of cycles of overhead [25, 46]".
    sw_switch_fp_extra_cycles
        Additional cost when the 512-byte FXSAVE area must be saved and
        restored (Section 2, "Access to All Registers in the Kernel").
    scheduler_cycles
        One kernel-scheduler invocation (pick-next plus queue
        maintenance). Part of the Section 1 wakeup chain: "running the
        kernel scheduler".
    irq_entry_cycles / irq_exit_cycles
        Entering/leaving a hard IRQ context via the IDT, including the
        interrupt frame. Section 2: eliminating "an expensive transition
        to a hard IRQ context".
    ipi_cycles
        Delivering an inter-processor interrupt to another core
        (Section 1: "potentially sending an inter-processor interrupt
        (IPI) to another core").
    vm_exit_cycles
        Hardware VM-exit to root mode and the corresponding resume.
        Section 2: "waste hundreds of nanoseconds context-switching to
        root-mode" [20, 53] -- hundreds of ns = roughly a thousand
        cycles round-trip at 3 GHz.
    cache_pollution_cycles
        Aggregate cache/TLB warmup penalty after a context switch
        ("suffering many cache misses along the way", Section 1). The
        indirect cost FlexSC [69] measures.

    Proposed (hardware-thread) world
    --------------------------------
    hw_start_rf_cycles
        Starting a ptid whose state sits in the per-core register file:
        "proportional to the length of the pipeline, roughly 20 clock
        cycles in modern processors" (Section 4).
    hw_start_l2_cycles / hw_start_l3_cycles
        Starting a ptid whose state was spilled to L2/L3: "the
        additional cost of a bulk transfer of register state from the L2
        or L3 cache is limited to 10 to 50 clock cycles (i.e., 3ns to
        16ns for a 3GHz CPU)" (Section 4). We take 10+20 and 50+20 (the
        transfer is *additional* to the pipeline refill).
    hw_stop_cycles
        Disabling a ptid: drain its in-flight instructions -- of the
        order of the pipeline depth.
    monitor_wakeup_cycles
        Write-to-runnable latency of the monitor unit (HyperPlane [57]
        shows "such monitoring is possible with relatively small
        overhead").
    rpull_rpush_cycles
        One remote register read/write by another ptid.
    tdt_lookup_cycles / tdt_miss_cycles
        vtid->ptid translation hit in the TDT cache vs. a walk of the
        memory-resident table (invtid forces misses).

    Coherence (src/repro/coherence, off by default)
    -----------------------------------------------
    dir_arm_cycles
        ``monitor`` joining a line's directory sharer set: one
        directory lookup + entry update, of L2-access order.
    dir_disarm_cycles
        Retiring a sharer entry when a watch is consumed or cancelled.
    dir_inval_base_cycles
        Writer-side fixed cost of a store hitting a shared line: the
        directory visit that starts the invalidation fan-out.
    dir_inval_per_sharer_cycles
        Per-sharer invalidation message; the directory serializes them,
        so both the writer's charge and the k-th waiter's forward delay
        grow by this much per sharer.
    dir_forward_cycles
        Forwarding the wakeup to one sharer -- a cache-to-cache hop, of
        L3-access order.
    tdt_cross_shard_cycles
        Resolving a vtid homed on another node's TDT partition: one
        fabric round trip (2 x the 2000-cycle default link base).

    Memory system
    -------------
    l1_hit_cycles, l2_hit_cycles, l3_hit_cycles, dram_cycles
        Conventional load-to-use latencies used by the cache simulator.
    """

    # --- baseline world ------------------------------------------------
    mode_switch_cycles: int = 300
    sw_switch_cycles: int = 500
    sw_switch_fp_extra_cycles: int = 200
    scheduler_cycles: int = 800
    irq_entry_cycles: int = 400
    irq_exit_cycles: int = 300
    ipi_cycles: int = 1500
    vm_exit_cycles: int = 1200
    cache_pollution_cycles: int = 1000

    # --- proposed world ------------------------------------------------
    hw_start_rf_cycles: int = 20
    hw_start_l2_cycles: int = 30
    hw_start_l3_cycles: int = 70
    hw_stop_cycles: int = 10
    monitor_wakeup_cycles: int = 4
    rpull_rpush_cycles: int = 3
    tdt_lookup_cycles: int = 1
    tdt_miss_cycles: int = 40

    # --- coherence (directory watch bus + sharded TDT) -------------------
    dir_arm_cycles: int = 6
    dir_disarm_cycles: int = 4
    dir_inval_base_cycles: int = 12
    dir_inval_per_sharer_cycles: int = 8
    dir_forward_cycles: int = 20
    tdt_cross_shard_cycles: int = 4_000

    # --- memory system --------------------------------------------------
    l1_hit_cycles: int = 4
    l2_hit_cycles: int = 14
    l3_hit_cycles: int = 50
    dram_cycles: int = 250

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ConfigError(f"{field.name} must be non-negative, got {value}")

    # ------------------------------------------------------------------
    # derived path costs
    # ------------------------------------------------------------------
    def baseline_io_wakeup_cycles(self, cross_core: bool = False,
                                  include_pollution: bool = True) -> int:
        """Cost of waking a blocked software thread on I/O, the Section 1
        chain: IRQ entry + handler exit + scheduler + (optional IPI) +
        software switch + cache-pollution penalty."""
        total = (self.irq_entry_cycles + self.irq_exit_cycles
                 + self.scheduler_cycles + self.sw_switch_cycles)
        if cross_core:
            total += self.ipi_cycles
        if include_pollution:
            total += self.cache_pollution_cycles
        return total

    def hw_wakeup_cycles(self, tier: str = "rf") -> int:
        """Cost of an mwait-wakeup dispatch in the proposed model."""
        return self.monitor_wakeup_cycles + self.hw_start_cycles(tier)

    def hw_start_cycles(self, tier: str) -> int:
        """Start latency by storage tier ('rf' | 'l2' | 'l3')."""
        if tier == "rf":
            return self.hw_start_rf_cycles
        if tier == "l2":
            return self.hw_start_l2_cycles
        if tier == "l3":
            return self.hw_start_l3_cycles
        raise ConfigError(f"unknown storage tier {tier!r}")

    def sw_switch_total_cycles(self, fp_state: bool = False,
                               include_pollution: bool = True) -> int:
        """Full software context switch including scheduler."""
        total = self.sw_switch_cycles + self.scheduler_cycles
        if fp_state:
            total += self.sw_switch_fp_extra_cycles
        if include_pollution:
            total += self.cache_pollution_cycles
        return total

    def syscall_sync_cycles(self, fp_save: bool = False) -> int:
        """In-thread synchronous syscall entry+exit overhead."""
        total = self.mode_switch_cycles
        if fp_save:
            total += self.sw_switch_fp_extra_cycles
        return total

    def syscall_hw_thread_cycles(self, tier: str = "rf") -> int:
        """Dedicated-ptid syscall: start the kernel ptid, pass args."""
        return self.hw_start_cycles(tier) + self.rpull_rpush_cycles

    def vm_exit_hw_thread_cycles(self, tier: str = "rf") -> int:
        """VM-exit as stop(guest)+start(hypervisor) instead of a mode switch."""
        return self.hw_stop_cycles + self.hw_start_cycles(tier)

    # ------------------------------------------------------------------
    def scaled(self, **overrides: int) -> "CostModel":
        """A copy with selected fields replaced (for sensitivity sweeps)."""
        return dataclasses.replace(self, **overrides)
