"""Architectural state and cost modeling.

- :mod:`repro.arch.registers` -- register-set layout and the x86-64 state
  footprint arithmetic from Section 4 of the paper (272 B base, 784 B with
  the FXSAVE/SSE area; register-file capacity math).
- :mod:`repro.arch.state` -- :class:`ArchState`, the per-hardware-thread
  register context manipulated by ``rpull``/``rpush``.
- :mod:`repro.arch.costs` -- :class:`CostModel`, one dataclass holding
  every latency constant the paper (and its citations) quote, so each
  experiment's assumptions are auditable in one place.
"""

from repro.arch.costs import CostModel
from repro.arch.registers import (
    FXSAVE_BYTES,
    GPR_COUNT,
    RegisterClass,
    RegisterSpec,
    X86_64_BASE_STATE_BYTES,
    X86_64_FULL_STATE_BYTES,
    register_file_capacity,
    state_bytes,
)
from repro.arch.state import ArchState, ControlRegister

__all__ = [
    "ArchState",
    "ControlRegister",
    "CostModel",
    "FXSAVE_BYTES",
    "GPR_COUNT",
    "RegisterClass",
    "RegisterSpec",
    "X86_64_BASE_STATE_BYTES",
    "X86_64_FULL_STATE_BYTES",
    "register_file_capacity",
    "state_bytes",
]
