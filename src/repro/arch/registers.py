"""Register-set layout and state-footprint arithmetic.

Section 4 of the paper: "For x86-64, a thread has 272 bytes of register
state that goes up to 784 bytes if SSE3 vector extensions are used."

The 272-byte base decomposes as:

===============================  =====
16 general-purpose registers      128 B
RIP + RFLAGS                       16 B
6 segment registers                12 B
CR0/CR2/CR3/CR4/CR8 + EFER etc.    48 B
debug + misc MSR-shadow state      68 B
===============================  =====

(The exact split below is a reasonable reconstruction; the *totals* are
the paper's.) The jump to 784 B adds the 512-byte FXSAVE area that holds
x87/SSE state -- 272 + 512 = 784, exactly the paper's number.

The same section sizes register files: "the 64KByte register file in the
sub-core of a Nvidia Tesla V100 GPU can store the state for 83 to 224
x86-64 threads", and "For a CPU with 100 cores, the cost is 6.4MB in
register file space." :func:`register_file_capacity` reproduces this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigError

GPR_COUNT = 16
GPR_BYTES = GPR_COUNT * 8  # 128
RIP_RFLAGS_BYTES = 16
SEGMENT_BYTES = 12
CONTROL_BYTES = 48
DEBUG_MISC_BYTES = 68

#: Base integer/control state of one x86-64 thread (paper: 272 bytes).
X86_64_BASE_STATE_BYTES = (
    GPR_BYTES + RIP_RFLAGS_BYTES + SEGMENT_BYTES + CONTROL_BYTES + DEBUG_MISC_BYTES
)

#: The FXSAVE region holding x87/MMX/SSE state.
FXSAVE_BYTES = 512

#: Full state with vector extensions in use (paper: 784 bytes).
X86_64_FULL_STATE_BYTES = X86_64_BASE_STATE_BYTES + FXSAVE_BYTES


class RegisterClass(enum.Enum):
    """Classes of registers, ordered by the TDT permission model.

    ``MODIFY_SOME`` permission covers GENERAL only; ``MODIFY_MOST`` adds
    PC/FLAGS and unprivileged control registers; PRIVILEGED registers
    (TDT pointer, privilege mode) always require supervisor mode.
    """

    GENERAL = "general"
    PC = "pc"
    FLAGS = "flags"
    CONTROL = "control"
    PRIVILEGED = "privileged"
    VECTOR = "vector"


@dataclass(frozen=True)
class RegisterSpec:
    """Static description of one architectural register."""

    name: str
    reg_class: RegisterClass
    bytes_: int = 8


def general_register_names(count: int = GPR_COUNT) -> List[str]:
    """Names of the general-purpose registers: r0..r{count-1}."""
    if count < 1:
        raise ConfigError(f"need at least one GPR, got {count}")
    return [f"r{i}" for i in range(count)]


def build_register_specs(gpr_count: int = GPR_COUNT,
                         vector_count: int = 16) -> Dict[str, RegisterSpec]:
    """Full register map for the simulated architecture.

    Control registers include the paper's two novel ones:

    - ``edp`` -- exception descriptor pointer: "specifies where to write
      an exception descriptor when the ptid becomes disabled".
    - ``tdtr`` -- thread-descriptor-table register: "specifies the
      location of a table mapping vtids to ptids".
    """
    specs: Dict[str, RegisterSpec] = {}
    for name in general_register_names(gpr_count):
        specs[name] = RegisterSpec(name, RegisterClass.GENERAL)
    specs["pc"] = RegisterSpec("pc", RegisterClass.PC)
    specs["flags"] = RegisterSpec("flags", RegisterClass.FLAGS)
    specs["edp"] = RegisterSpec("edp", RegisterClass.CONTROL)
    specs["tdtr"] = RegisterSpec("tdtr", RegisterClass.PRIVILEGED)
    specs["priv"] = RegisterSpec("priv", RegisterClass.PRIVILEGED)
    for i in range(vector_count):
        specs[f"v{i}"] = RegisterSpec(f"v{i}", RegisterClass.VECTOR, bytes_=32)
    return specs


_SPEC_CACHE: Dict[tuple, Dict[str, RegisterSpec]] = {}


def register_specs(gpr_count: int = GPR_COUNT,
                   vector_count: int = 16) -> Dict[str, RegisterSpec]:
    """Shared (memoized) register map for a given geometry.

    :class:`RegisterSpec` is frozen and callers only look specs up, so
    every :class:`~repro.arch.state.ArchState` of the same shape can
    share one dict instead of rebuilding ~37 dataclass instances per
    thread (a measurable cost when a cluster boots hundreds of ptids).
    Callers that want a private, mutable map should keep using
    :func:`build_register_specs`.
    """
    key = (gpr_count, vector_count)
    specs = _SPEC_CACHE.get(key)
    if specs is None:
        specs = build_register_specs(gpr_count, vector_count)
        _SPEC_CACHE[key] = specs
    return specs


def state_bytes(with_vector: bool) -> int:
    """Per-thread state footprint, per the paper's x86-64 numbers."""
    return X86_64_FULL_STATE_BYTES if with_vector else X86_64_BASE_STATE_BYTES


def register_file_capacity(file_bytes: int, with_vector: bool = True) -> int:
    """How many thread contexts fit in a register file of ``file_bytes``.

    With the V100 sub-core's 64 KiB file this gives 83 contexts for full
    784-byte state and 240 for base 272-byte state, bracketing the
    paper's "83 to 224" (their upper bound assumes per-context overhead
    we do not model; ours is the pure-division bound).
    """
    if file_bytes <= 0:
        raise ConfigError(f"register file size must be positive, got {file_bytes}")
    return file_bytes // state_bytes(with_vector)


def chip_register_file_bytes(cores: int, file_bytes_per_core: int = 64 * 1024) -> int:
    """Total register-file budget for a chip.

    Paper: "For a CPU with 100 cores, the cost is 6.4MB in register file
    space" -- 100 * 64 KiB.
    """
    if cores <= 0:
        raise ConfigError(f"core count must be positive, got {cores}")
    return cores * file_bytes_per_core
