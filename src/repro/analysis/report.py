"""Experiment-result containers and paper-vs-measured claims.

A position paper has no measured tables, so the reproduction target is
its *quantitative claims* ("hundreds of cycles", "roughly 20 clock
cycles", "83 to 224 x86-64 threads", ...). Each experiment emits
:class:`Claim` records stating what the paper says, what we measured,
and whether the measurement supports the claim's *shape* (ordering /
rough factor), which is what EXPERIMENTS.md tabulates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.analysis.tables import Table
from repro.errors import ConfigError


class Verdict(enum.Enum):
    """Did the measurement support the paper's claim?"""

    SUPPORTED = "supported"
    PARTIAL = "partial"
    REFUTED = "refuted"


@dataclass
class Claim:
    """One paper-vs-measured comparison row."""

    claim: str                 # what the paper asserts, quoted or summarized
    paper_value: str           # the paper's number / ordering, as text
    measured_value: str        # what this reproduction measured
    verdict: Verdict

    def as_row(self) -> tuple:
        return (self.claim, self.paper_value, self.measured_value,
                self.verdict.value)


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    ``tables`` hold the printable evaluation rows; ``claims`` the
    paper-vs-measured records; ``data`` raw series for tests that
    assert on shapes (monotonicity, crossovers, ratios).
    """

    experiment_id: str
    title: str
    tables: List[Table] = field(default_factory=list)
    claims: List[Claim] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def add_claim(self, claim: str, paper_value: str, measured_value: str,
                  verdict: Verdict = Verdict.SUPPORTED) -> Claim:
        record = Claim(claim, paper_value, measured_value, verdict)
        self.claims.append(record)
        return record

    def claim_table(self) -> Table:
        """The claims rendered as a table."""
        table = Table(["claim", "paper", "measured", "verdict"],
                      title=f"{self.experiment_id}: paper vs measured")
        for claim in self.claims:
            table.add_row(*claim.as_row())
        return table

    def all_supported(self) -> bool:
        """True when no claim was refuted."""
        return all(c.verdict is not Verdict.REFUTED for c in self.claims)

    def render(self) -> str:
        """Full text report: title, tables, claims."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for table in self.tables:
            parts.append(table.render())
        if self.claims:
            parts.append(self.claim_table().render())
        return "\n\n".join(parts)

    def render_markdown(self) -> str:
        """Markdown report for EXPERIMENTS.md."""
        parts = [f"### {self.experiment_id}: {self.title}"]
        for table in self.tables:
            parts.append(table.render_markdown())
        if self.claims:
            parts.append(self.claim_table().render_markdown())
        return "\n\n".join(parts)

    def to_json(self, indent: int = 2) -> str:
        """Serialize tables, claims, and data for downstream plotting.

        Non-JSON-native values in ``data`` (dataclasses, enums) are
        stringified; the tables and claims are always fully structured.
        """
        import json

        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "tables": [
                {
                    "title": table.title,
                    "columns": table.columns,
                    "rows": table.rows,
                }
                for table in self.tables
            ],
            "claims": [
                {
                    "claim": claim.claim,
                    "paper": claim.paper_value,
                    "measured": claim.measured_value,
                    "verdict": claim.verdict.value,
                }
                for claim in self.claims
            ],
            "data": self.data,
        }
        return json.dumps(payload, indent=indent, default=str)

    def series(self, key: str) -> Any:
        """Fetch a raw data series; raises with the known keys on miss."""
        if key not in self.data:
            raise ConfigError(
                f"{self.experiment_id} has no series {key!r}; "
                f"known: {sorted(self.data)}")
        return self.data[key]
