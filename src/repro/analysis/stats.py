"""Latency statistics.

Percentiles use linear interpolation between closest ranks (the same
convention as ``numpy.percentile``'s default), computed in pure Python
so the core library stays dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import ConfigError


def percentile(samples: Sequence[float], pct: float) -> float:
    """Interpolated percentile of ``samples`` (pct in [0, 100])."""
    if not samples:
        raise ConfigError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ConfigError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    # delta form: exact when the neighbors are equal (the lerp form
    # a*(1-f) + b*f drifts by an ULP, and worse for denormals)
    return float(ordered[low] + (ordered[high] - ordered[low]) * frac)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a latency sample set."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(samples: Sequence[float]) -> Summary:
    """Compute the standard summary used in every experiment table."""
    if not samples:
        raise ConfigError("summarize of empty sample set")
    ordered = sorted(samples)
    return Summary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=percentile(ordered, 50.0),
        p95=percentile(ordered, 95.0),
        p99=percentile(ordered, 99.0),
        maximum=float(ordered[-1]),
    )


class LatencyRecorder:
    """Accumulates latency samples and derives summaries.

    Supports warmup trimming: the first ``warmup`` recorded samples are
    dropped from statistics (standard steady-state practice).
    """

    def __init__(self, name: str = "", warmup: int = 0):
        if warmup < 0:
            raise ConfigError(f"warmup must be non-negative, got {warmup}")
        self.name = name
        self.warmup = warmup
        self._samples: List[float] = []
        self._seen = 0

    def record(self, value: float) -> None:
        """Record one sample (warmup samples are counted but dropped)."""
        self._seen += 1
        if self._seen > self.warmup:
            self._samples.append(float(value))

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def summary(self) -> Summary:
        return summarize(self._samples)

    def pct(self, pct: float) -> float:
        return percentile(self._samples, pct)

    def mean(self) -> float:
        if not self._samples:
            raise ConfigError(f"recorder {self.name!r} has no samples")
        return sum(self._samples) / len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<LatencyRecorder {self.name} n={len(self._samples)}>"


def throughput_per_second(completed: int, elapsed_cycles: float,
                          freq_ghz: float = 3.0) -> float:
    """Completions per wall-clock second at the given frequency."""
    if elapsed_cycles <= 0:
        raise ConfigError(f"elapsed must be positive, got {elapsed_cycles}")
    seconds = elapsed_cycles / (freq_ghz * 1e9)
    return completed / seconds


def utilization(busy_cycles: float, elapsed_cycles: float,
                servers: int = 1) -> float:
    """Fraction of server capacity spent busy."""
    if elapsed_cycles <= 0:
        raise ConfigError(f"elapsed must be positive, got {elapsed_cycles}")
    return busy_cycles / (elapsed_cycles * servers)


def ratio(a: float, b: float) -> float:
    """Safe a/b for speedup columns; b == 0 returns inf."""
    if b == 0:
        return math.inf
    return a / b


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (for aggregating speedups)."""
    if not values:
        raise ConfigError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
