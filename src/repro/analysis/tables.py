"""Plain-text tables with aligned columns.

Every benchmark prints its results through :class:`Table`, so the
console output of ``pytest benchmarks/ --benchmark-only`` reads like the
rows of the paper's evaluation and EXPERIMENTS.md can embed the same
rendering.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.errors import ConfigError


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


class Table:
    """A titled, column-aligned text table."""

    def __init__(self, columns: Sequence[str], title: str = ""):
        if not columns:
            raise ConfigError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        """Append a row; must match the column count."""
        if len(values) != len(self.columns):
            raise ConfigError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append([_fmt(v) for v in values])

    def add_dict_row(self, row: dict) -> None:
        """Append a row from a dict keyed by column name."""
        self.add_row(*[row[c] for c in self.columns])

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The table as an aligned multi-line string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """The table as GitHub-flavored markdown (for EXPERIMENTS.md)."""
        lines: List[str] = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def column(self, name: str) -> List[str]:
        """All cells of one column (rendered strings)."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise ConfigError(f"no column named {name!r}") from None
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        return self.render()
