"""Measurement and reporting utilities shared by all experiments.

- :mod:`repro.analysis.stats` -- latency recorders, interpolated
  percentiles, mean/max summaries, throughput helpers.
- :mod:`repro.analysis.tables` -- plain-text tables with aligned
  columns, used by every benchmark to print the rows the paper reports.
- :mod:`repro.analysis.report` -- experiment-result containers and the
  paper-vs-measured comparison records that feed EXPERIMENTS.md.
"""

from repro.analysis.report import Claim, ExperimentResult, Verdict
from repro.analysis.stats import LatencyRecorder, percentile, summarize
from repro.analysis.tables import Table

__all__ = [
    "LatencyRecorder",
    "percentile",
    "summarize",
    "Table",
    "ExperimentResult",
    "Claim",
    "Verdict",
]
