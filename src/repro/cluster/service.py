"""The cluster front-end: fan-out, replication, and hedged requests.

A cluster request is split into ``fanout`` shard requests; each shard
is routed through the :class:`~repro.cluster.balancer.LoadBalancer` to
a node and carried both ways by the
:class:`~repro.cluster.fabric.Fabric`. The cluster response time is the
**max over shards** -- the tail-at-scale amplification: at fan-out N
the cluster p99 probes each node's 0.99^(1/N) quantile, so per-node
tail inflation (the sw-thread transition tax) is magnified, not
averaged away.

Loss and stragglers are handled by **hedged requests**: if a shard has
not responded ``hedge_after`` cycles after launch, one duplicate is
sent to a replica the shard has not tried yet; the first response wins
(the loser's work still burns server capacity, as in real systems).

Conservation is tracked exactly so property tests can audit any run,
even one stopped mid-flight at a horizon:

- per node:   ``admitted == completed + in_flight``;
- shard attempts: every launch ends in exactly one of
  {request-wire drop, admission rejection, node admission}, and every
  node admission ends in {response delivered, response-wire drop,
  still in the node};
- cluster:    ``issued == completed + dropped + in_flight``.

A cluster request is *dropped* only when some shard is dead: all its
attempts failed (wire drop or rejection) and no hedge remains to
revive it. Responses that arrive for an already-settled request are
counted (``late_responses``) but change nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import LatencyRecorder
from repro.cluster.balancer import LoadBalancer
from repro.cluster.fabric import Fabric
from repro.cluster.node import ClusterNode
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.trace import Tracer

CLIENT = "client"


@dataclass
class _ShardState:
    """One shard of one in-flight cluster request."""

    done: bool = False
    outstanding: int = 0          # attempts on the wire or in a node
    hedge_pending: bool = False   # a hedge timer that may still revive us
    tried: Tuple[ClusterNode, ...] = ()


@dataclass
class _RequestState:
    """One in-flight cluster request."""

    request_id: int
    arrived: int
    shards: List[_ShardState] = field(default_factory=list)
    remaining: int = 0            # shards not yet done
    settled: bool = False         # completed or dropped


class ClusterService:
    """Fans cluster requests over the nodes and records the max-over-
    shards response time."""

    def __init__(self, engine: Engine, nodes: Sequence[ClusterNode],
                 balancer: LoadBalancer, fabric: Fabric, *,
                 fanout: int = 1, segments: int = 2,
                 rtt_cycles: int = 10_000,
                 hedge_after: Optional[int] = None):
        if fanout < 1:
            raise ConfigError(f"fanout must be >= 1, got {fanout}")
        if fanout > len(nodes):
            raise ConfigError(
                f"fanout {fanout} exceeds the {len(nodes)}-node cluster")
        if segments < 1:
            raise ConfigError(f"segments must be >= 1, got {segments}")
        if hedge_after is not None and hedge_after < 1:
            raise ConfigError(
                f"hedge delay must be >= 1 cycle, got {hedge_after}")
        self.engine = engine
        self.nodes = list(nodes)
        self.balancer = balancer
        self.fabric = fabric
        self.fanout = fanout
        self.segments = segments
        self.rtt_cycles = rtt_cycles
        self.hedge_after = hedge_after
        self.recorder = LatencyRecorder("cluster.latency")
        self.tracer = Tracer(engine)
        # cluster-request accounting
        self.issued = 0
        self.completed = 0
        self.dropped = 0
        self.in_flight = 0
        # shard-attempt accounting
        self.attempts = 0
        self.hedges_sent = 0
        self.request_wire_drops = 0
        self.response_wire_drops = 0
        self.rejected = 0
        self.late_responses = 0
        self.shards_completed = 0    # first responses: shards marked done
        self.requests_on_wire = 0    # request messages in transit
        self.responses_on_wire = 0   # response messages in transit
        self._next_shard_req = 0
        self._obs_latency = None
        import repro.obs as obs
        session = obs.active()
        if session is not None:
            prefix = session.register_source("cluster.service",
                                             self._fill_metrics)
            self._obs_latency = session.registry.histogram(
                f"{prefix}.latency_cycles")
        # distributed tracing: the ambient span store (None when off --
        # every hook below is a single attribute-is-None guard)
        import repro.obs.spans as spans
        self._spans = spans.active()

    # ------------------------------------------------------------------
    def submit(self, request_id: int,
               shard_service_cycles: Sequence[float]) -> None:
        """A cluster request arrives now, one service draw per shard."""
        if len(shard_service_cycles) != self.fanout:
            raise ConfigError(
                f"expected {self.fanout} shard service draws, got "
                f"{len(shard_service_cycles)}")
        state = _RequestState(request_id=request_id,
                              arrived=self.engine.now,
                              remaining=self.fanout)
        if self._spans is not None:
            self._spans.request_begin(request_id, state.arrived,
                                      self.fanout)
        self.issued += 1
        self.in_flight += 1
        self.tracer.count("cluster issued")
        for shard_index, cycles in enumerate(shard_service_cycles):
            shard = _ShardState()
            state.shards.append(shard)
            if self.hedge_after is not None:
                shard.hedge_pending = True
                self.engine.after(self.hedge_after, self._hedge,
                                  state, shard_index, cycles)
            self._launch(state, shard_index, cycles)

    # ------------------------------------------------------------------
    def _launch(self, state: _RequestState, shard_index: int,
                cycles: float) -> None:
        shard = state.shards[shard_index]
        node = self.balancer.pick(exclude=shard.tried)
        shard.tried = shard.tried + (node,)
        shard.outstanding += 1
        self.attempts += 1
        # the attempt id is assigned client-side at launch (not at node
        # arrival) so it is a pure function of the routing sequence --
        # the sharded runtime relies on this to name attempts
        # identically on both sides of a process boundary
        self._next_shard_req += 1
        if self._spans is not None:
            self._spans.attempt_launch(
                state.request_id, shard_index, self._next_shard_req,
                node.name, self.engine.now,
                hedged=len(shard.tried) > 1)
        self._send_request(state, shard_index, cycles, node,
                           self._next_shard_req)

    def _send_request(self, state: _RequestState, shard_index: int,
                      cycles: float, node: ClusterNode,
                      attempt_id: int) -> None:
        """Carry one shard attempt to its node (the transport seam the
        parallel-in-time runtime overrides)."""
        delivered = self.fabric.send(CLIENT, node.name, self._arrive,
                                     state, shard_index, cycles, node,
                                     attempt_id)
        if delivered:
            self.requests_on_wire += 1
        else:
            self.request_wire_drops += 1
            if self._spans is not None:
                self._spans.attempt_request_dropped(attempt_id)
            self._attempt_failed(state, shard_index)

    def _arrive(self, state: _RequestState, shard_index: int,
                cycles: float, node: ClusterNode, attempt_id: int) -> None:
        self.requests_on_wire -= 1
        per_segment = [max(1.0, cycles) / self.segments] * self.segments
        accepted = node.offer(
            attempt_id, per_segment, self.rtt_cycles,
            on_done=lambda: self._node_finished(state, shard_index, node,
                                                attempt_id))
        if not accepted:
            self.rejected += 1
            self._attempt_failed(state, shard_index)

    def _node_finished(self, state: _RequestState, shard_index: int,
                       node: ClusterNode, attempt_id: int) -> None:
        delivered = self.fabric.send(node.name, CLIENT, self._response,
                                     state, shard_index, attempt_id)
        if delivered:
            self.responses_on_wire += 1
        else:
            self.response_wire_drops += 1
            if self._spans is not None:
                self._spans.attempt_response_dropped(attempt_id)
            self._attempt_failed(state, shard_index)

    def _response(self, state: _RequestState, shard_index: int,
                  attempt_id: int) -> None:
        self.responses_on_wire -= 1
        shard = state.shards[shard_index]
        shard.outstanding -= 1
        if state.settled or shard.done:
            # a duplicate (hedged) or post-settlement response
            self.late_responses += 1
            if self._spans is not None:
                self._spans.attempt_late(attempt_id, self.engine.now)
            return
        shard.done = True
        self.shards_completed += 1
        state.remaining -= 1
        if self._spans is not None:
            self._spans.attempt_won(attempt_id, self.engine.now)
        if state.remaining == 0:
            state.settled = True
            self.completed += 1
            self.in_flight -= 1
            latency = self.engine.now - state.arrived
            self.recorder.record(latency)
            self.tracer.count("cluster completed")
            if self._obs_latency is not None:
                self._obs_latency.record(latency)
            if self._spans is not None:
                # the attempt settling the request is, by construction,
                # the winner of the slowest shard: the critical path
                self._spans.request_settled(state.request_id,
                                            self.engine.now, "completed",
                                            critical_attempt=attempt_id)

    # ------------------------------------------------------------------
    def _attempt_failed(self, state: _RequestState,
                        shard_index: int) -> None:
        shard = state.shards[shard_index]
        shard.outstanding -= 1
        if state.settled or shard.done:
            return
        if shard.outstanding == 0 and not shard.hedge_pending:
            # the shard is dead and nothing can revive it
            state.settled = True
            self.dropped += 1
            self.in_flight -= 1
            self.tracer.count("cluster dropped")
            if self._spans is not None:
                self._spans.request_settled(state.request_id,
                                            self.engine.now, "dropped")

    def _hedge(self, state: _RequestState, shard_index: int,
               cycles: float) -> None:
        shard = state.shards[shard_index]
        shard.hedge_pending = False
        if state.settled or shard.done:
            return
        self.hedges_sent += 1
        self.tracer.count("cluster hedges")
        self._launch(state, shard_index, cycles)

    # ------------------------------------------------------------------
    def conservation(self) -> Dict[str, Any]:
        """Audit the conservation laws; every ``*_ok`` flag must hold at
        any instant, including mid-run at a horizon."""
        per_node = []
        for node in self.nodes:
            per_node.append({
                "node": node.name,
                "admitted": node.admitted,
                "completed": node.completed,
                "in_flight": node.in_flight(),
                "ok": node.conserved(),
            })
        admitted = sum(n.admitted for n in self.nodes)
        node_completed = sum(n.completed for n in self.nodes)
        node_in_flight = sum(n.in_flight() for n in self.nodes)
        # every launched attempt settles into exactly one bucket
        attempts_ok = (
            self.attempts
            == self.request_wire_drops + self.rejected + admitted
            + self.requests_on_wire)
        # every node completion becomes exactly one of: a dropped
        # response, a response still on the wire, a first response that
        # marked a shard done, or a late/duplicate response
        completions_ok = (
            node_completed
            == self.response_wire_drops + self.responses_on_wire
            + self.shards_completed + self.late_responses)
        requests_ok = (self.issued
                       == self.completed + self.dropped + self.in_flight)
        return {
            "per_node": per_node,
            "nodes_ok": all(entry["ok"] for entry in per_node),
            "attempts": self.attempts,
            "attempts_ok": attempts_ok,
            "completions_ok": completions_ok,
            "requests_ok": requests_ok,
            "ok": (all(entry["ok"] for entry in per_node)
                   and attempts_ok and completions_ok and requests_ok),
            "issued": self.issued,
            "completed": self.completed,
            "dropped": self.dropped,
            "in_flight": self.in_flight,
            "node_in_flight": node_in_flight,
        }

    # ------------------------------------------------------------------
    def merged_tracer(self) -> Tracer:
        """One tracer folding the service's and every node's counters
        (the cross-node ``Tracer.merge`` view)."""
        merged = Tracer(enabled=True)
        merged.merge(self.tracer)
        for node in self.nodes:
            merged.merge(node.tracer)
        return merged

    def _fill_metrics(self, registry, prefix: str) -> None:
        registry.inc(f"{prefix}.issued", self.issued)
        registry.inc(f"{prefix}.completed", self.completed)
        registry.inc(f"{prefix}.dropped", self.dropped)
        registry.inc(f"{prefix}.attempts", self.attempts)
        registry.inc(f"{prefix}.hedges", self.hedges_sent)
        registry.inc(f"{prefix}.rejected", self.rejected)
        registry.inc(f"{prefix}.late_responses", self.late_responses)
        registry.set(f"{prefix}.in_flight", self.in_flight)
        # the full conservation audit, gauge-per-field, so dashboards
        # reading only the snapshot can re-run every check (booleans as
        # 0/1 gauges -- the snapshot round-trips the whole dict)
        audit = self.conservation()
        base = f"{prefix}.conservation"
        for key in ("ok", "nodes_ok", "attempts_ok", "completions_ok",
                    "requests_ok"):
            registry.set(f"{base}.{key}", int(audit[key]))
        for key in ("attempts", "issued", "completed", "dropped",
                    "in_flight", "node_in_flight"):
            registry.set(f"{base}.{key}", audit[key])
        for entry in audit["per_node"]:
            node_base = f"{base}.{entry['node']}"
            registry.set(f"{node_base}.admitted", entry["admitted"])
            registry.set(f"{node_base}.completed", entry["completed"])
            registry.set(f"{node_base}.in_flight", entry["in_flight"])
            registry.set(f"{node_base}.ok", int(entry["ok"]))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ClusterService fanout={self.fanout}"
                f" nodes={len(self.nodes)} issued={self.issued}"
                f" completed={self.completed}>")
