"""One-call cluster runs: config in, deterministic summary out.

:func:`run_cluster` builds the whole stack -- shared engine, nodes,
balancer, fabric, front-end, open-loop workload -- runs it, and returns
a :class:`ClusterRunResult`. The CLI verb (``python -m repro cluster``),
``examples/cluster_service.py``, and experiment E14 all go through this
one entry point so a configuration means the same thing everywhere.

Determinism: every random draw comes from named
:class:`~repro.sim.rng.RngStreams` keyed off ``config.label()``, so the
same (config, seed) pair reproduces byte-identical results in any
process -- the property the parallel evaluation runner relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.arch.costs import CostModel
from repro.backends import backend_names
from repro.cluster.balancer import LoadBalancer
from repro.cluster.fabric import Fabric, LinkSpec
from repro.cluster.node import ClusterNode
from repro.cluster.service import CLIENT, ClusterService
from repro.distributed.rpc import (
    EVENT_LOOP,
    HW_THREADS,
    SW_THREADS,
    ServerDesign,
)
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.service import Exponential, ServiceDistribution

#: Server designs by name, for the CLI and experiment sweeps.
DESIGNS = {d.name: d for d in (HW_THREADS, SW_THREADS, EVENT_LOOP)}

#: Shard placement policies (see :func:`build_cluster`).
PLACEMENTS = ("any", "same-rack")


def get_design(name: str) -> ServerDesign:
    """Look up a server design by name; actionable error on a miss."""
    design = DESIGNS.get(name)
    if design is None:
        raise ConfigError(
            f"unknown server design {name!r}; known designs: "
            f"{', '.join(DESIGNS)}")
    return design


@dataclass(frozen=True)
class ClusterConfig:
    """Everything one cluster run depends on."""

    nodes: int = 4
    design: ServerDesign = HW_THREADS
    policy: str = "round-robin"
    fanout: int = 1
    load: float = 0.6               # per-node offered load of base service
    mean_service_cycles: int = 20_000
    segments: int = 2
    rtt_cycles: int = 10_000        # mid-request remote call, per segment gap
    requests: int = 500
    cores_per_node: int = 1
    queue_limit: Optional[int] = None
    hedge_after: Optional[int] = None
    threads_per_peer: int = 4       # worker-pool size per cluster peer
    link: LinkSpec = LinkSpec()
    horizon_factor: float = 8.0     # run horizon in mean-gap multiples
    backend: str = "model"          # server backend: "model" | "isa"
    probe_delay_cycles: int = 0     # jsq/p2c load-signal staleness
    racks: int = 1                  # nodes are striped node_id % racks
    cross_rack_link: Optional[LinkSpec] = None  # client<->other racks
    placement: str = "any"          # "any" | "same-rack" shard placement
    shards: int = 1                 # engine shards (parallel-in-time PDES)
    coherence: str = "off"          # watch-bus model: "off" | "directory"
                                    # | "null" (isa backend only)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigError(f"need at least one node, got {self.nodes}")
        if not 0.0 < self.load:
            raise ConfigError(f"load must be positive, got {self.load}")
        if self.requests < 1:
            raise ConfigError(
                f"need at least one request, got {self.requests}")
        if self.fanout > self.nodes:
            raise ConfigError(
                f"fanout {self.fanout} exceeds {self.nodes} nodes")
        if self.threads_per_peer < 0:
            raise ConfigError(
                f"threads_per_peer must be >= 0, got {self.threads_per_peer}")
        if self.backend not in backend_names():
            raise ConfigError(
                f"unknown server backend {self.backend!r}; known "
                f"backends: {', '.join(backend_names())}")
        if self.probe_delay_cycles < 0:
            raise ConfigError(
                f"probe delay must be >= 0 cycles, got "
                f"{self.probe_delay_cycles}")
        if self.racks < 1:
            raise ConfigError(f"need at least one rack, got {self.racks}")
        if self.racks > self.nodes:
            raise ConfigError(
                f"{self.racks} racks need at least as many nodes, "
                f"got {self.nodes}")
        if self.placement not in PLACEMENTS:
            raise ConfigError(
                f"unknown placement {self.placement!r}; known: "
                f"{', '.join(PLACEMENTS)}")
        if self.shards < 1:
            raise ConfigError(
                f"need at least one shard, got {self.shards}")
        if self.shards > self.nodes:
            raise ConfigError(
                f"{self.shards} shards need at least as many nodes, "
                f"got {self.nodes}")
        if self.coherence != "off":
            from repro.coherence.directory import MODEL_NAMES
            if self.coherence not in MODEL_NAMES:
                raise ConfigError(
                    f"unknown coherence model {self.coherence!r}; known: "
                    f"off, {', '.join(MODEL_NAMES)}")
            if self.backend != "isa":
                raise ConfigError(
                    "coherence models attach to a node's machine; use "
                    "backend='isa' (the 'model' backend has no machine)")

    def label(self) -> str:
        """Stable stream-name prefix for this configuration.

        Non-default fidelity/topology knobs append suffixes so new
        configurations get fresh streams, while every pre-existing
        configuration keeps its exact historical label (byte-identical
        tables across the backend refactor). ``shards`` is deliberately
        absent: how a run is partitioned across engines must never
        change which random numbers it draws.
        """
        extra = ""
        if self.backend != "model":
            extra += f".{self.backend}"
        if self.coherence != "off":
            extra += f".coh-{self.coherence}"
        if self.probe_delay_cycles:
            extra += f".pd{self.probe_delay_cycles}"
        if self.racks > 1:
            extra += f".r{self.racks}.{self.placement}"
        return (f"cluster.n{self.nodes}.{self.design.name}.{self.policy}"
                f".f{self.fanout}.l{self.load}{extra}")

    def workload_label(self) -> str:
        """Stream prefix for the *offered workload* -- deliberately
        independent of the server design, the backend fidelity level,
        the probe delay, and the placement policy, so hw-threads and
        sw-threads clusters -- and behavioral-model and ISA-level
        clusters -- face identical arrival times and service draws
        (common random numbers: comparisons measure the design or the
        backend, not the sampling noise)."""
        return (f"cluster.n{self.nodes}.{self.policy}"
                f".f{self.fanout}.l{self.load}")

    def mean_gap_cycles(self) -> float:
        """Cluster inter-arrival gap that offers ``load`` per node.

        Each arrival puts ``fanout`` shards of mean service into the
        cluster, spread over ``nodes`` nodes of ``cores_per_node``
        capacity each.
        """
        demand_per_arrival = self.fanout * self.mean_service_cycles
        capacity = self.nodes * self.cores_per_node
        return demand_per_arrival / (self.load * capacity)

    def horizon(self) -> int:
        return int(self.requests * self.mean_gap_cycles()
                   * self.horizon_factor) + 16 * self.rtt_cycles


@dataclass
class ClusterRunResult:
    """A finished run: the live objects plus the headline numbers."""

    config: ClusterConfig
    engine: Engine
    service: ClusterService
    summary: Dict[str, Any]


def node_link_spec(config: ClusterConfig, node_id: int) -> LinkSpec:
    """The (symmetric) client<->node link spec under this topology:
    the client sits in rack 0, so nodes in any other rack pay the
    cross-rack spec when one is configured."""
    if config.cross_rack_link is not None and node_id % config.racks != 0:
        return config.cross_rack_link
    return config.link


def request_lookahead(config: ClusterConfig) -> int:
    """The conservative-PDES lookahead: the minimum base latency of any
    client->node link that can carry a request. Every cross-shard
    message pays at least this much wire time, so a shard that has seen
    all messages sent by time T is safe to run through T + lookahead."""
    return min(node_link_spec(config, node_id).base_cycles
               for node_id in range(config.nodes))


def build_cluster(config: ClusterConfig, streams: RngStreams,
                  engine: Optional[Engine] = None,
                  costs: Optional[CostModel] = None) -> ClusterService:
    """Assemble nodes + balancer + fabric + front-end on one engine."""
    engine = engine or Engine()
    costs = costs or CostModel()
    label = config.workload_label()
    # fan-in scales with the cluster: every peer keeps
    # threads_per_peer worker connections resident on each node
    resident = (config.threads_per_peer * config.nodes
                if config.threads_per_peer > 0 else None)
    coherence = None if config.coherence == "off" else config.coherence
    nodes = [ClusterNode(engine, node_id, config.design, costs,
                         cores=config.cores_per_node,
                         queue_limit=config.queue_limit,
                         resident_threads=resident,
                         backend=config.backend,
                         coherence=coherence)
             for node_id in range(config.nodes)]
    # "same-rack" placement keeps shards in the client's rack (rack 0,
    # node_id % racks == 0); "any" spreads over the whole cluster
    if config.placement == "same-rack":
        eligible = [n for n in nodes if n.node_id % config.racks == 0]
    else:
        eligible = nodes
    balancer = LoadBalancer(eligible, config.policy,
                            rng=streams.stream(f"{label}.lb"),
                            probe_delay_cycles=config.probe_delay_cycles,
                            engine=engine)
    # per-directed-link streams: a link's draw sequence depends only on
    # the traffic crossing that link, which is what lets a PDES shard
    # worker reproduce its own links without seeing the others
    fabric = Fabric(
        engine,
        stream_factory=lambda link: streams.stream(f"{label}.net.{link}"),
        default_link=config.link)
    for node in nodes:
        spec = node_link_spec(config, node.node_id)
        if spec is not config.link:
            fabric.set_link(CLIENT, node.name, spec)
            fabric.set_link(node.name, CLIENT, spec)
    return ClusterService(engine, nodes, balancer, fabric,
                          fanout=config.fanout, segments=config.segments,
                          rtt_cycles=config.rtt_cycles,
                          hedge_after=config.hedge_after)


def drive_workload(service: ClusterService, config: ClusterConfig,
                   streams: RngStreams,
                   distribution: Optional[ServiceDistribution] = None) -> None:
    """Open-loop Poisson arrivals, one independent service draw per
    shard (the tail-at-scale model: shards straggle independently)."""
    label = config.workload_label()
    arrivals = PoissonArrivals(config.mean_gap_cycles())
    gaps = arrivals.gaps(streams.stream(f"{label}.arrivals"))
    service_rng = streams.stream(f"{label}.service")
    distribution = distribution or Exponential(config.mean_service_cycles)
    engine = service.engine
    state = {"issued": 0}

    def next_arrival() -> None:
        if state["issued"] >= config.requests:
            return
        engine.after(max(1, int(round(next(gaps)))), arrive)

    def arrive() -> None:
        state["issued"] += 1
        draws = [distribution.sample(service_rng)
                 for _ in range(config.fanout)]
        service.submit(state["issued"], draws)
        next_arrival()

    next_arrival()


def run_cluster(config: ClusterConfig, seed: int = 0xC0FFEE,
                distribution: Optional[ServiceDistribution] = None,
                horizon: Optional[int] = None,
                transport: str = "process") -> ClusterRunResult:
    """Build, drive, and run one cluster to its horizon.

    With ``config.shards > 1`` the run is partitioned over shard
    engines by the conservative PDES runtime (``transport`` selects
    worker processes or the in-process debug mode); the summary is
    byte-identical to the single-engine run either way.
    """
    if config.shards > 1:
        from repro.cluster.pdes import run_sharded
        return run_sharded(config, seed=seed, distribution=distribution,
                           horizon=horizon, transport=transport)
    streams = RngStreams(seed)
    service = build_cluster(config, streams)
    drive_workload(service, config, streams, distribution)
    engine = service.engine
    engine.run(until=horizon if horizon is not None else config.horizon())
    return ClusterRunResult(config=config, engine=engine, service=service,
                            summary=summarize_run(service))


def summarize_run(service: ClusterService) -> Dict[str, Any]:
    """The headline numbers every table and test reads."""
    if service.completed == 0:
        latency = {"p50": float("inf"), "p95": float("inf"),
                   "p99": float("inf"), "mean": float("inf")}
    else:
        summary = service.recorder.summary()
        latency = {"p50": summary.p50, "p95": summary.p95,
                   "p99": summary.p99, "mean": summary.mean}
    conservation = service.conservation()
    return {
        "issued": service.issued,
        "completed": service.completed,
        "dropped": service.dropped,
        "in_flight": service.in_flight,
        "hedges": service.hedges_sent,
        "rejected": service.rejected,
        "wire_drops": (service.request_wire_drops
                       + service.response_wire_drops),
        "goodput_per_mcycle": (service.completed / service.engine.now * 1e6
                               if service.engine.now else 0.0),
        "mean_net_delay": service.fabric.mean_delay_cycles(),
        "conserved": conservation["ok"],
        **latency,
    }


def scaled(config: ClusterConfig, **changes: Any) -> ClusterConfig:
    """A copy of ``config`` with fields replaced (sweep helper)."""
    return replace(config, **changes)
