"""Multi-machine datacenter simulation.

The paper's motivating workloads are μs-scale datacenter services, and
its per-node argument -- software-thread multiplexing taxes every
block/wake transition -- matters most *at scale*, where cluster
response time is the max over fanned-out shards and every node's tail
is amplified (the tail-at-scale effect). This package composes many
:class:`~repro.distributed.rpc.RpcServerModel` nodes into one simulated
datacenter on a shared :class:`~repro.sim.engine.Engine`:

- :mod:`repro.cluster.fabric` -- the network: per-link latency
  distributions (base + exponential jitter) and drop probability;
- :mod:`repro.cluster.balancer` -- pluggable load balancing: random,
  round-robin, join-shortest-queue, power-of-two-choices;
- :mod:`repro.cluster.node` -- one machine: an RPC server plus
  admission control, conservation counters, per-node metrics/timeline;
- :mod:`repro.cluster.service` -- the front-end: request fan-out over
  shards (response = max over shards), replication via hedged
  requests, exact conservation accounting;
- :mod:`repro.cluster.run` -- config-driven runs shared by the CLI
  (``python -m repro cluster``), ``examples/cluster_service.py``, and
  experiment E14;
- :mod:`repro.cluster.pdes` -- parallel-in-time sharding: one engine
  per node partition, synchronized conservatively on the fabric's
  guaranteed link latency (``shards=N`` on :class:`ClusterConfig`),
  byte-identical to the single-engine run.
"""

from repro.cluster.balancer import POLICIES, LoadBalancer
from repro.cluster.fabric import Fabric, LinkSpec
from repro.cluster.node import ClusterNode
from repro.cluster.pdes import CausalityError, run_sharded
from repro.cluster.run import (
    DESIGNS,
    PLACEMENTS,
    ClusterConfig,
    ClusterRunResult,
    build_cluster,
    drive_workload,
    get_design,
    node_link_spec,
    request_lookahead,
    run_cluster,
    scaled,
    summarize_run,
)
from repro.cluster.service import ClusterService

__all__ = [
    "POLICIES",
    "DESIGNS",
    "PLACEMENTS",
    "get_design",
    "LoadBalancer",
    "Fabric",
    "LinkSpec",
    "ClusterNode",
    "ClusterService",
    "ClusterConfig",
    "ClusterRunResult",
    "build_cluster",
    "drive_workload",
    "node_link_spec",
    "request_lookahead",
    "run_cluster",
    "run_sharded",
    "CausalityError",
    "scaled",
    "summarize_run",
]
