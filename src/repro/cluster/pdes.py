"""Parallel-in-time cluster runs: conservative PDES over shard workers.

The paper's core asymmetry -- cross-domain transitions are cheap,
cross-*machine* communication is not -- is exactly the property a
conservative parallel discrete-event scheme exploits. Every message
between the cluster front-end and a node pays at least the
:class:`~repro.cluster.fabric.LinkSpec` base latency, so that latency
is guaranteed *lookahead*: a shard that has seen every message sent by
time ``T`` can safely simulate through ``T + lookahead`` without ever
receiving an event from the past.

Topology
--------
The cluster is a star: nodes talk only to the client, never to each
other. That makes the partition simple -- node ``i`` lives on shard
``i % shards``, each shard runs its own :class:`~repro.sim.engine.Engine`
(heap or wheel, same ``REPRO_ENGINE_QUEUE`` selection), and the client
side (front-end, balancer, workload, hedge timers, latency recorder)
runs on the coordinating engine. Cross-shard sends become timestamped
tuples over pipes, delivered into the destination engine at
``send_time + sampled link delay``.

Two synchronization schedules
-----------------------------
*Windowed lockstep* (always correct): the run advances in windows of
``lookahead`` cycles. Workers simulate ``(T, T+L]`` first -- every
request that can arrive there was sent at or before ``T`` and is
already shipped -- then the client replays the same window with the
workers' rejections/responses injected at their exact timestamps.
Load-aware policies (jsq, p2c) and hedging need this schedule because
the client's next routing decision can depend on node state one
response ago.

*Decoupled pipeline* (the fast path, for outbound-independent
configurations: ``random`` / ``round-robin`` routing without hedging):
the client's outbound traffic is a pure function of the named RNG
streams, so a first engine-less pass replays the draw sequence and
streams every request to the workers ahead of time. Workers then run
big adaptive windows while the client replays accounting one window
behind -- synchronization cost amortizes to nothing and the window
size self-tunes toward a target event count per batch.

Workers waiting at a window barrier spin before parking (the
"Switchless Calls Made Configless" idea): the spin budget grows on
spin-hits and shrinks on parks, so busy pipelines never pay a sleep
and idle ones never burn a core.

Determinism
-----------
Every random draw comes from the same named streams as the
single-engine run -- per-directed-link fabric streams, the balancer
stream, the arrival and service-time streams -- and attempt ids are
assigned client-side at launch, so a sharded run consumes *exactly*
the draws of the single-engine run, in the same per-stream order. The
summary is byte-identical to ``shards=1`` (asserted by tests at small
scale and by the mirror cross-check on every run). The one caveat:
when two events collide on the *same cycle* of one shard engine, the
dispatch tie-break is insertion order, which a partitioned run cannot
always reproduce; injection is staged at the original send time to
make the insertion order match in all but pathological collisions.
"""

from __future__ import annotations

import multiprocessing
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.arch.costs import CostModel
from repro.cluster.balancer import LoadBalancer
from repro.cluster.fabric import Fabric
from repro.cluster.node import ClusterNode
from repro.cluster.service import CLIENT, ClusterService
from repro.cluster.run import (
    ClusterConfig,
    ClusterRunResult,
    drive_workload,
    node_link_spec,
    request_lookahead,
    summarize_run,
)
from repro.errors import ConfigError, SimulationError
from repro.obs.timeline import ThreadState
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.service import Exponential, ServiceDistribution


class CausalityError(SimulationError):
    """The conservative protocol was violated: a cross-shard message
    would have to be delivered in a shard's already-committed past."""


#: Policies whose routing decisions read no node state: the outbound
#: request sequence is a pure function of the RNG streams, which
#: enables the decoupled pipeline schedule.
OUTBOUND_INDEPENDENT = ("random", "round-robin")

#: Transports for the shard workers.
TRANSPORTS = ("process", "inline")

#: Decoupled-mode tuning: per-shard engine events to aim for in one
#: window (big enough to amortize a pipe round-trip, small enough to
#: keep batches below pipe-buffer pathologies), and the bounds the
#: adaptive window may move between.
_TARGET_BATCH_EVENTS = 40_000
_MIN_CHUNK_ARRIVALS = 512


def shard_node_ids(nodes: int, shards: int) -> List[List[int]]:
    """Striped partition: node ``i`` lives on shard ``i % shards`` (the
    same striping racks use, so racks spread evenly over shards)."""
    if not 1 <= shards <= nodes:
        raise ConfigError(
            f"need 1..{nodes} shards for {nodes} nodes, got {shards}")
    return [list(range(s, nodes, shards)) for s in range(shards)]


# ----------------------------------------------------------------------
# client side: proxy nodes and the sharded front-end
# ----------------------------------------------------------------------
class _ProxyNode:
    """Client-side stand-in for a remote node.

    Mirrors the counters the front-end, balancer, conservation audit,
    tracer merge, and obs snapshot read -- updated at the exact
    timestamps the remote events carry, so ``jsq`` load signals and
    busy/idle timelines equal the single-engine run. ``busy_cycles``
    is folded in from the worker's final stats at the end of the run.
    """

    def __init__(self, engine: Engine, node_id: int, design) -> None:
        self.engine = engine
        self.node_id = node_id
        self.name = f"node{node_id}"
        self.tracer = Tracer(engine)
        self.admitted = 0
        self.completed = 0
        self.rejected = 0
        self._in_flight = 0
        self._busy_cycles = 0
        self._obs_timeline = None
        self._obs_track = 0
        import repro.obs as obs
        session = obs.active()
        if session is not None:
            prefix = session.register_source("cluster.node",
                                             self._fill_metrics)
            self._obs_timeline = session.timeline
            self._obs_track = session.register_track(
                f"{prefix}.{design.name}")

    def in_flight(self) -> int:
        return self._in_flight

    def busy_cycles(self) -> int:
        return self._busy_cycles

    def conserved(self) -> bool:
        return self.admitted == self.completed + self._in_flight

    # mirrors of ClusterNode.offer / ClusterNode._finished bookkeeping
    def mirror_admit(self) -> None:
        self.admitted += 1
        self._in_flight += 1
        self.tracer.count("cluster node admitted")
        if self._obs_timeline is not None and self._in_flight == 1:
            self._obs_timeline.transition(self._obs_track, 0,
                                          ThreadState.RUNNING,
                                          self.engine.now)

    def mirror_finish(self) -> None:
        self._in_flight -= 1
        self.completed += 1
        self.tracer.count("cluster node completed")
        if self._obs_timeline is not None and self._in_flight == 0:
            self._obs_timeline.transition(self._obs_track, 0,
                                          ThreadState.MWAIT,
                                          self.engine.now)

    def mirror_reject(self) -> None:
        self.rejected += 1
        self.tracer.count("cluster node rejected")

    def _fill_metrics(self, registry, prefix: str) -> None:
        registry.inc(f"{prefix}.admitted", self.admitted)
        registry.inc(f"{prefix}.completed", self.completed)
        registry.inc(f"{prefix}.rejected", self.rejected)
        registry.inc(f"{prefix}.busy_cycles", self.busy_cycles())
        registry.set(f"{prefix}.in_flight", self._in_flight)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<_ProxyNode {self.name} in_flight={self._in_flight}>"


class ShardedClusterService(ClusterService):
    """The cluster front-end over proxy nodes.

    Keeps every accounting rule of :class:`ClusterService` -- the
    request-wire draws happen client-side on the same per-link streams
    and the fabric counters mirror both message legs -- but the node
    work itself happens in shard workers whose rejections and
    responses are injected back as timestamped events.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: attempt id -> (request state, shard index, proxy node)
        self._attempts: Dict[int, Tuple[Any, int, _ProxyNode]] = {}
        #: attempt ids the workers rejected, consulted at delivery time
        self._remote_rejected: set = set()
        #: (send_ts, deliver_ts, attempt_id, node_id, cycles) to ship
        self._outbox: List[Tuple[int, int, int, int, float]] = []
        #: decoupled mode pre-ships requests from the generation pass,
        #: so the live outbox is disabled there
        self.collect_outbox = True
        #: protocol diagnostics (windows, lookahead, slack, waiter
        #: stats), filled by the coordinator
        self.pdes: Dict[str, Any] = {}

    # -- outbound: the transport seam -------------------------------
    def _send_request(self, state, shard_index: int, cycles: float,
                      node, attempt_id: int) -> None:
        # same counters and same per-link draw order as Fabric.send,
        # but delivery is a local accounting event and the request
        # itself travels to the owning shard as a timestamped tuple
        fabric = self.fabric
        spec = fabric.link_for(CLIENT, node.name)
        rng = fabric.rng_for(CLIENT, node.name)
        fabric.sent += 1
        if spec.drop_prob > 0.0 and rng.random() < spec.drop_prob:
            fabric.dropped += 1
            self.request_wire_drops += 1
            if self._spans is not None:
                self._spans.attempt_request_dropped(attempt_id)
            self._attempt_failed(state, shard_index)
            return
        delay = spec.sample_delay(rng)
        fabric.latency_cycles += delay
        fabric.in_flight += 1
        self.requests_on_wire += 1
        self._attempts[attempt_id] = (state, shard_index, node)
        now = self.engine.now
        if self.collect_outbox:
            self._outbox.append((now, now + delay, attempt_id,
                                 node.node_id, cycles))
        self.engine.after(delay, self._request_delivered, state,
                          shard_index, node, attempt_id)

    def drain_outbox(self) -> List[Tuple[int, int, int, int, float]]:
        outbox, self._outbox = self._outbox, []
        return outbox

    def _request_delivered(self, state, shard_index: int, node,
                           attempt_id: int) -> None:
        # the client-side image of fabric._deliver + _arrive: by the
        # conservative schedule the worker has already committed this
        # timestamp, so its admission verdict is in _remote_rejected
        fabric = self.fabric
        fabric.in_flight -= 1
        fabric.delivered += 1
        self.requests_on_wire -= 1
        if attempt_id in self._remote_rejected:
            self._remote_rejected.discard(attempt_id)
            del self._attempts[attempt_id]
            node.mirror_reject()
            self.rejected += 1
            self._attempt_failed(state, shard_index)
        else:
            node.mirror_admit()

    # -- inbound: worker batches ------------------------------------
    def apply_batch(self, rejects: Sequence[Tuple[int, int]],
                    resps: Sequence[Tuple[int, int, int]],
                    drops: Sequence[Tuple[int, int]]) -> None:
        """Inject one worker window's outputs (must be called before
        the client replays past their timestamps)."""
        engine = self.engine
        for _ts, attempt_id in rejects:
            self._remote_rejected.add(attempt_id)
        for ts, attempt_id, delay in resps:
            engine.at(ts, self._remote_finished, attempt_id, delay)
        for ts, attempt_id in drops:
            engine.at(ts, self._remote_finished_dropped, attempt_id)

    def _pop_attempt(self, attempt_id: int):
        try:
            return self._attempts.pop(attempt_id)
        except KeyError:
            raise SimulationError(
                f"shard protocol error: worker finished attempt "
                f"{attempt_id} the client never launched") from None

    def _remote_finished(self, attempt_id: int, delay: int) -> None:
        # node finish at this timestamp, then the response-wire leg,
        # with the delay the worker drew from the node->client stream
        state, shard_index, node = self._pop_attempt(attempt_id)
        node.mirror_finish()
        fabric = self.fabric
        fabric.sent += 1
        fabric.latency_cycles += delay
        fabric.in_flight += 1
        self.responses_on_wire += 1
        self.engine.after(delay, self._remote_response, state, shard_index,
                          attempt_id)

    def _remote_response(self, state, shard_index: int,
                         attempt_id: int) -> None:
        fabric = self.fabric
        fabric.in_flight -= 1
        fabric.delivered += 1
        self._response(state, shard_index, attempt_id)

    def _remote_finished_dropped(self, attempt_id: int) -> None:
        state, shard_index, node = self._pop_attempt(attempt_id)
        node.mirror_finish()
        fabric = self.fabric
        fabric.sent += 1
        fabric.dropped += 1
        self.response_wire_drops += 1
        if self._spans is not None:
            self._spans.attempt_response_dropped(attempt_id)
        self._attempt_failed(state, shard_index)


@contextmanager
def _obs_redirected(session):
    """Swap the ambient obs stack for a worker-local one while building
    shard workers.

    The client-side proxies own every ``cluster.*`` registration, and a
    worker's internals (queueing servers, ISA machines, caches) must not
    leak sources into the coordinator's session -- a sharded snapshot
    has to carry exactly the single-engine namespaces. When ``session``
    is not None the worker's internals register *there* instead, and the
    coordinator merges the harvested result back at the end of the run
    (:func:`_merge_worker_obs`); None silences them entirely.
    """
    import repro.obs as obs
    saved = obs._ACTIVE[:]
    obs._ACTIVE.clear()
    if session is not None:
        obs._ACTIVE.append(session)
    try:
        yield
    finally:
        del obs._ACTIVE[:]
        obs._ACTIVE.extend(saved)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class ShardWorker:
    """One shard: its nodes on a private engine, plus the conservative
    protocol edge (causality-checked injection, bounded advances,
    batched outputs)."""

    def __init__(self, config: ClusterConfig, seed: int,
                 node_ids: Sequence[int],
                 collect_obs: bool = False,
                 collect_spans: bool = False) -> None:
        self.engine = Engine()
        costs = CostModel()
        label = config.workload_label()
        streams = RngStreams(seed)
        resident = (config.threads_per_peer * config.nodes
                    if config.threads_per_peer > 0 else None)
        self.segments = config.segments
        self.rtt_cycles = config.rtt_cycles
        self.nodes: Dict[int, ClusterNode] = {}
        self._response_links: Dict[int, Tuple[Any, Any]] = {}
        # node internals (queueing servers, ISA machines) register with
        # a worker-local session when the coordinator is collecting;
        # per-node marks let export_obs ship them back per node so the
        # coordinator can re-register them in global node order
        import repro.obs as obs
        import repro.obs.spans as spans
        self.obs_session = obs.Session("shard") if collect_obs else None
        # distributed tracing: node-side span fragments land in a
        # worker-local store (attempt ids are globally unique, so the
        # coordinator's merge is a disjoint union) and ship home with
        # the final stats
        self.span_store = spans.SpanStore() if collect_spans else None
        self._node_order = list(node_ids)
        self._obs_marks: List[Tuple[int, int, int]] = []
        with _obs_redirected(self.obs_session), \
                spans._redirected(self.span_store):
            for node_id in node_ids:
                self._obs_marks.append(self._obs_mark())
                node = ClusterNode(self.engine, node_id, config.design,
                                   costs,
                                   cores=config.cores_per_node,
                                   queue_limit=config.queue_limit,
                                   resident_threads=resident,
                                   backend=config.backend,
                                   register_obs=False,
                                   coherence=(None
                                              if config.coherence == "off"
                                              else config.coherence))
                self.nodes[node_id] = node
                self._response_links[node_id] = (
                    node_link_spec(config, node_id),
                    streams.stream(f"{label}.net.{node.name}->client"))
            self._obs_marks.append(self._obs_mark())
        self._committed = 0
        self._rejects: List[Tuple[int, int]] = []
        self._resps: List[Tuple[int, int, int]] = []
        self._drops: List[Tuple[int, int]] = []

    # -- protocol edge ----------------------------------------------
    def inject(self,
               reqs: Sequence[Tuple[int, int, int, int, float]]) -> None:
        """Receive shipped requests (send_ts, deliver_ts, attempt_id,
        node_id, service cycles)."""
        engine = self.engine
        committed = self._committed
        for send_ts, deliver_ts, attempt_id, node_id, cycles in reqs:
            if deliver_ts <= committed:
                raise CausalityError(
                    f"request {attempt_id} would be delivered at "
                    f"t={deliver_ts}, but this shard has already "
                    f"committed t={committed}")
            node = self.nodes[node_id]
            if send_ts > committed:
                # stage the scheduling at the original send time so the
                # engine's insertion order -- its same-timestamp
                # tie-break -- matches the single-engine run
                engine.at(send_ts, self._deliver_later, deliver_ts,
                          attempt_id, node, cycles)
            else:
                engine.at(deliver_ts, self._deliver, attempt_id, node,
                          cycles)

    def advance(self, until: int) -> Tuple[List, List, List, int]:
        """Run through ``until`` (inclusive) and return this window's
        (rejects, responses, response_drops, total events processed)."""
        if until < self._committed:
            raise CausalityError(
                f"cannot advance to t={until}: already committed "
                f"t={self._committed}")
        self.engine.run(until=until)
        self._committed = until
        batch = (self._rejects, self._resps, self._drops,
                 self.engine.events_processed)
        self._rejects, self._resps, self._drops = [], [], []
        return batch

    def final_stats(self) -> Dict[int, Tuple[int, int, int, int, int]]:
        return {node_id: (node.admitted, node.completed, node.rejected,
                          node.in_flight(), node.busy_cycles())
                for node_id, node in self.nodes.items()}

    # -- observability export ---------------------------------------
    def _obs_mark(self) -> Tuple[int, int, int]:
        session = self.obs_session
        if session is None:
            return (0, 0, 0)
        return (len(session.sources), len(session.machines),
                session._next_track)

    def export_obs(self) -> Optional[Dict[str, Any]]:
        """Everything the worker-local session collected, as picklable
        per-node blocks (see :mod:`repro.obs.merge`): harvested source
        fills, the registry entries each source wrote, timeline rows,
        and machine digests."""
        session = self.obs_session
        if session is None:
            return None
        from repro.obs.merge import (harvest_source, machine_digest,
                                     split_registry)
        prefixes = [prefix for prefix, _fill in session.sources]
        per_prefix, leftover = split_registry(session.registry, prefixes)
        timeline = session.timeline
        track_node: Dict[int, int] = {}
        blocks: Dict[int, Dict[str, Any]] = {}
        for pos, node_id in enumerate(self._node_order):
            s0, m0, t0 = self._obs_marks[pos]
            s1, m1, t1 = self._obs_marks[pos + 1]
            for track in range(t0, t1):
                track_node[track] = node_id
            blocks[node_id] = {
                "sources": [{
                    "kind": session.source_kinds[i],
                    "prefix": session.sources[i][0],
                    "fill": harvest_source(session.sources[i][1]),
                    "registry": per_prefix[session.sources[i][0]],
                } for i in range(s0, s1)],
                "tracks": [(track, timeline.core_names.get(track, ""))
                           for track in range(t0, t1)],
                "spans": [], "instants": [], "open": [],
                "machines": [machine_digest(machine)
                             for machine in session.machines[m0:m1]],
            }
        for span in timeline.spans:
            blocks[track_node[span.core_id]]["spans"].append(
                (span.core_id, span.ptid, span.state, span.begin, span.end))
        for instant in timeline.instants:
            blocks[track_node[instant.core_id]]["instants"].append(
                (instant.core_id, instant.ptid, instant.name, instant.at))
        for core_id, ptid, state, begin in timeline.open_spans():
            blocks[track_node[core_id]]["open"].append(
                (core_id, ptid, state, begin))
        return {"nodes": blocks, "extra": leftover,
                "dropped": timeline.dropped}

    def export_spans(self) -> Optional[Dict[str, Any]]:
        """The worker's span fragments, picklable, or None when
        tracing is off."""
        if self.span_store is None:
            return None
        return self.span_store.export_fragments()

    # -- simulation callbacks ---------------------------------------
    def _deliver_later(self, deliver_ts: int, attempt_id: int,
                       node: ClusterNode, cycles: float) -> None:
        self.engine.at(deliver_ts, self._deliver, attempt_id, node, cycles)

    def _deliver(self, attempt_id: int, node: ClusterNode,
                 cycles: float) -> None:
        per_segment = [max(1.0, cycles) / self.segments] * self.segments
        accepted = node.offer(
            attempt_id, per_segment, self.rtt_cycles,
            on_done=lambda: self._finished(attempt_id, node))
        if not accepted:
            self._rejects.append((self.engine.now, attempt_id))

    def _finished(self, attempt_id: int, node: ClusterNode) -> None:
        # the node->client wire draws happen worker-side on the same
        # per-link stream the single-engine fabric would use
        spec, rng = self._response_links[node.node_id]
        now = self.engine.now
        if spec.drop_prob > 0.0 and rng.random() < spec.drop_prob:
            self._drops.append((now, attempt_id))
        else:
            self._resps.append((now, attempt_id, spec.sample_delay(rng)))


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
class SpinParkWaiter:
    """Spin-then-park waiting with an online spin budget.

    The self-tuning idea from "SGX Switchless Calls Made Configless":
    instead of a hand-picked spin count, the budget doubles every time
    spinning pays off and halves every time the waiter has to park, so
    a busy pipeline converges to pure spinning and an idle one to
    immediate parking.
    """

    def __init__(self, min_spin: int = 16, max_spin: int = 4096) -> None:
        self.min_spin = min_spin
        self.max_spin = max_spin
        self.spin_limit = min_spin
        self.spin_hits = 0
        self.parks = 0

    def wait(self, poll: Callable[..., bool]) -> None:
        """Block until ``poll()`` says data is ready."""
        for _ in range(self.spin_limit):
            if poll(0):
                self.spin_hits += 1
                self.spin_limit = min(self.max_spin, self.spin_limit * 2)
                return
        self.parks += 1
        self.spin_limit = max(self.min_spin, self.spin_limit // 2)
        while not poll(0.05):
            pass


class _InlineShard:
    """In-process transport: the worker runs synchronously on the
    coordinator's thread. No parallelism -- this is the debug and
    determinism-test mode, and the reference the process transport
    must match byte for byte."""

    def __init__(self, config: ClusterConfig, seed: int,
                 node_ids: Sequence[int], collect_obs: bool,
                 collect_spans: bool) -> None:
        self.worker = ShardWorker(config, seed, node_ids,
                                  collect_obs=collect_obs,
                                  collect_spans=collect_spans)
        self._batch: Optional[Tuple] = None
        self.obs_payload: Optional[Dict[str, Any]] = None
        self.span_payload: Optional[Dict[str, Any]] = None
        self.spin_hits = 0
        self.parks = 0

    def post_reqs(self, reqs: Sequence) -> None:
        if reqs:
            self.worker.inject(reqs)

    def post_advance(self, until: int) -> None:
        self._batch = self.worker.advance(until)

    def recv_batch(self) -> Tuple:
        batch, self._batch = self._batch, None
        return batch

    def finish(self) -> Dict[int, Tuple]:
        self.obs_payload = self.worker.export_obs()
        self.span_payload = self.worker.export_spans()
        return self.worker.final_stats()

    def stop(self) -> None:
        pass


def _shard_main(conn, config: ClusterConfig, seed: int,
                node_ids: Sequence[int], collect_obs: bool,
                collect_spans: bool) -> None:
    """Worker-process entry point: a command loop over the pipe."""
    try:
        worker = ShardWorker(config, seed, node_ids,
                             collect_obs=collect_obs,
                             collect_spans=collect_spans)
        waiter = SpinParkWaiter()
        while True:
            waiter.wait(conn.poll)
            msg = conn.recv()
            tag = msg[0]
            if tag == "reqs":
                worker.inject(msg[1])
            elif tag == "advance":
                conn.send(("batch",) + worker.advance(msg[1]))
            elif tag == "finish":
                conn.send(("stats", worker.final_stats(),
                           waiter.spin_hits, waiter.parks,
                           worker.export_obs(), worker.export_spans()))
            elif tag == "stop":
                return
            else:  # pragma: no cover - protocol guard
                raise SimulationError(f"unknown shard command {tag!r}")
    except EOFError:  # coordinator died; nothing left to report to
        return
    except Exception:  # pragma: no cover - shipped to the coordinator
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _ProcessShard:
    """Worker-process transport over a duplex pipe.

    The protocol is strict request-reply per window (requests and the
    advance command flow only while the worker is idle at the barrier,
    and exactly one batch reply is collected per advance), which makes
    pipe-buffer deadlock impossible by construction.
    """

    def __init__(self, config: ClusterConfig, seed: int,
                 node_ids: Sequence[int], ctx, collect_obs: bool,
                 collect_spans: bool) -> None:
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_shard_main,
                                args=(child, config, seed, list(node_ids),
                                      collect_obs, collect_spans),
                                daemon=True)
        self.proc.start()
        child.close()
        self.waiter = SpinParkWaiter()
        self.obs_payload: Optional[Dict[str, Any]] = None
        self.span_payload: Optional[Dict[str, Any]] = None
        self.spin_hits = 0
        self.parks = 0

    def post_reqs(self, reqs: Sequence) -> None:
        if reqs:
            self.conn.send(("reqs", reqs))

    def post_advance(self, until: int) -> None:
        self.conn.send(("advance", until))

    def _recv(self) -> Tuple:
        self.waiter.wait(self.conn.poll)
        msg = self.conn.recv()
        if msg[0] == "error":
            raise SimulationError(f"shard worker failed:\n{msg[1]}")
        return msg

    def recv_batch(self) -> Tuple:
        msg = self._recv()
        if msg[0] != "batch":  # pragma: no cover - protocol guard
            raise SimulationError(f"expected a batch, got {msg[0]!r}")
        return msg[1:]

    def finish(self) -> Dict[int, Tuple]:
        self.conn.send(("finish",))
        msg = self._recv()
        if msg[0] != "stats":  # pragma: no cover - protocol guard
            raise SimulationError(f"expected stats, got {msg[0]!r}")
        self.spin_hits, self.parks = msg[2], msg[3]
        self.obs_payload = msg[4]
        self.span_payload = msg[5]
        return msg[1]

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (OSError, BrokenPipeError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.proc.join(timeout=10)
        if self.proc.is_alive():  # pragma: no cover - hung worker
            self.proc.terminate()
            self.proc.join(timeout=5)


# ----------------------------------------------------------------------
# the decoupled fast path: engine-less outbound generation
# ----------------------------------------------------------------------
class _NodeStub:
    """Identity-only node for the generation pass's balancer."""

    __slots__ = ("node_id", "name")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.name = f"node{node_id}"


def _outbound_chunks(config: ClusterConfig, seed: int,
                     distribution: Optional[ServiceDistribution],
                     horizon: int, nshards: int,
                     arrivals_per_chunk: int = _MIN_CHUNK_ARRIVALS):
    """Replay the client's outbound draw sequence without an engine.

    Yields ``(frontier, per_shard_requests)``: after a chunk is
    consumed, every request sent at or before ``frontier`` has been
    produced. Draw-for-draw identical to the live front-end: service
    draws, then per shard a balancer pick and the request-wire
    drop/delay draws, then the next inter-arrival gap -- each on the
    same named stream the live run uses, so both passes see identical
    sequences.
    """
    label = config.workload_label()
    streams = RngStreams(seed)
    stubs = [_NodeStub(node_id) for node_id in range(config.nodes)]
    if config.placement == "same-rack":
        eligible = [s for s in stubs if s.node_id % config.racks == 0]
    else:
        eligible = stubs
    balancer = LoadBalancer(eligible, config.policy,
                            rng=streams.stream(f"{label}.lb"))
    specs = {}
    rngs = {}
    for stub in stubs:
        specs[stub.node_id] = node_link_spec(config, stub.node_id)
        rngs[stub.node_id] = streams.stream(
            f"{label}.net.{CLIENT}->{stub.name}")
    arrivals = PoissonArrivals(config.mean_gap_cycles())
    gaps = arrivals.gaps(streams.stream(f"{label}.arrivals"))
    service_rng = streams.stream(f"{label}.service")
    distribution = distribution or Exponential(config.mean_service_cycles)

    now = 0
    issued = 0
    attempt = 0
    chunk: List[List[Tuple[int, int, int, int, float]]] = \
        [[] for _ in range(nshards)]
    pending = 0
    while issued < config.requests:
        now += max(1, int(round(next(gaps))))
        if now > horizon:
            break
        issued += 1
        draws = [distribution.sample(service_rng)
                 for _ in range(config.fanout)]
        for cycles in draws:
            node = balancer.pick()
            attempt += 1
            spec = specs[node.node_id]
            rng = rngs[node.node_id]
            if spec.drop_prob > 0.0 and rng.random() < spec.drop_prob:
                continue  # dropped on the request wire: never ships
            delay = spec.sample_delay(rng)
            chunk[node.node_id % nshards].append(
                (now, now + delay, attempt, node.node_id, cycles))
        pending += 1
        if pending >= arrivals_per_chunk:
            yield now, chunk
            chunk = [[] for _ in range(nshards)]
            pending = 0
    yield horizon, chunk


# ----------------------------------------------------------------------
# coordinator schedules
# ----------------------------------------------------------------------
def _min_slack(per_shard: Sequence[Sequence[Tuple]],
               current: Optional[int]) -> Optional[int]:
    for reqs in per_shard:
        for send_ts, deliver_ts, *_rest in reqs:
            slack = deliver_ts - send_ts
            if current is None or slack < current:
                current = slack
    return current


def _run_windowed(service: ShardedClusterService, shards: Sequence,
                  config: ClusterConfig, horizon: int) -> Dict[str, Any]:
    """Lockstep schedule: workers first, client second, per lookahead
    window. Correct for every configuration (including load-aware
    routing and hedging, whose next decision may depend on state one
    response ago)."""
    engine = service.engine
    lookahead = request_lookahead(config)
    windows = 0
    min_slack: Optional[int] = None
    committed = 0
    last_events = [0] * len(shards)
    while committed < horizon:
        target = min(horizon, committed + lookahead)
        # workers own (committed, target]: every request that can land
        # there was sent at or before `committed` and already shipped
        for shard in shards:
            shard.post_advance(target)
        batches = [shard.recv_batch() for shard in shards]
        for index, (rejects, resps, drops, events) in enumerate(batches):
            service.apply_batch(rejects, resps, drops)
            last_events[index] = events
        engine.run(until=target)
        outbox = service.drain_outbox()
        if outbox:
            per_shard: List[List[Tuple]] = [[] for _ in shards]
            for req in outbox:
                per_shard[req[3] % len(shards)].append(req)
            min_slack = _min_slack(per_shard, min_slack)
            for shard, reqs in zip(shards, per_shard):
                shard.post_reqs(reqs)
        committed = target
        windows += 1
    return {"mode": "windowed", "lookahead": lookahead,
            "windows": windows, "min_slack": min_slack,
            "worker_events": sum(last_events)}


def _run_decoupled(service: ShardedClusterService, shards: Sequence,
                   config: ClusterConfig, seed: int,
                   distribution: Optional[ServiceDistribution],
                   horizon: int) -> Dict[str, Any]:
    """Pipelined schedule for outbound-independent configurations: the
    generation pass streams requests ahead, workers run adaptive
    windows, and the client replays window k while the workers compute
    window k+1."""
    engine = service.engine
    lookahead = request_lookahead(config)
    service.collect_outbox = False  # the generation pass ships requests
    nshards = len(shards)
    chunks = _outbound_chunks(config, seed, distribution, horizon, nshards)
    frontier = 0
    exhausted = False
    min_slack: Optional[int] = None

    def generate_to(target: int) -> None:
        nonlocal frontier, exhausted, min_slack
        while not exhausted and frontier < target:
            try:
                frontier, per_shard = next(chunks)
            except StopIteration:
                exhausted = True
                frontier = horizon
                return
            min_slack = _min_slack(per_shard, min_slack)
            for shard, reqs in zip(shards, per_shard):
                shard.post_reqs(reqs)

    # initial window: ~a chunk of arrivals, never below the lookahead
    window = max(lookahead,
                 int(config.mean_gap_cycles() * _MIN_CHUNK_ARRIVALS))
    max_window = max(window, horizon // 4)
    windows = 0
    last_events = [0] * nshards

    target = min(horizon, window)
    generate_to(target)
    for shard in shards:
        shard.post_advance(target)
    while True:
        batches = [shard.recv_batch() for shard in shards]
        deltas = []
        for i, (rejects, resps, drops, events) in enumerate(batches):
            service.apply_batch(rejects, resps, drops)
            deltas.append(events - last_events[i])
            last_events[i] = events
        finished = target
        windows += 1
        if finished < horizon:
            # adapt toward the target batch size, then launch the next
            # window before replaying this one (the overlap)
            busiest = max(deltas)
            if busiest < _TARGET_BATCH_EVENTS // 2:
                window = min(max_window, window * 2)
            elif busiest > _TARGET_BATCH_EVENTS * 2:
                window = max(lookahead, window // 2)
            target = min(horizon, finished + window)
            generate_to(target)
            for shard in shards:
                shard.post_advance(target)
            engine.run(until=finished)
        else:
            engine.run(until=finished)
            break
    return {"mode": "decoupled", "lookahead": lookahead,
            "windows": windows, "min_slack": min_slack,
            "worker_events": sum(last_events)}


def _fold_final_stats(service: ShardedClusterService,
                      proxies: Sequence[_ProxyNode],
                      finals: Sequence[Dict[int, Tuple]]) -> None:
    """Cross-check every proxy mirror against the worker's ground truth
    and fold in the one quantity only the worker knows (busy cycles)."""
    merged: Dict[int, Tuple] = {}
    for stats in finals:
        merged.update(stats)
    for proxy in proxies:
        admitted, completed, rejected, in_flight, busy = merged[proxy.node_id]
        mirror = (proxy.admitted, proxy.completed, proxy.rejected,
                  proxy.in_flight())
        truth = (admitted, completed, rejected, in_flight)
        if mirror != truth:
            raise SimulationError(
                f"shard mirror diverged for {proxy.name}: client saw "
                f"(admitted, completed, rejected, in_flight)={mirror}, "
                f"worker reported {truth}")
        proxy._busy_cycles = busy


def _merge_worker_obs(session, payloads: Sequence[Optional[Dict]]) -> None:
    """Replay the workers' harvested observability into the client
    session, in global node order, so per-kind source indices (and with
    them every metric name) come out exactly as the single-engine run
    would have allocated them. Byte-identical for both backends: every
    digested quantity is a pure function of the simulation history
    (host-engine artifacts are excluded at the harvest itself, see
    :mod:`repro.obs.merge`)."""
    from repro.obs.merge import import_timeline, merge_at, replay_source
    blocks: Dict[int, Dict[str, Any]] = {}
    extras = []
    dropped = 0
    for payload in payloads:
        if payload is None:
            continue
        blocks.update(payload["nodes"])
        extras.append(payload["extra"])
        dropped += payload["dropped"]
    for node_id in sorted(blocks):
        block = blocks[node_id]
        renames: List[Tuple[str, str]] = []
        for source in block["sources"]:
            prefix = session.register_source(source["kind"],
                                             replay_source(source["fill"]))
            renames.append((source["prefix"], prefix))
            merge_at(session.registry, prefix, source["registry"])
        idmap: Dict[int, int] = {}
        for local_id, name in block["tracks"]:
            idmap[local_id] = session.register_track(
                _rename_prefix(name, renames))
        import_timeline(session.timeline, block["spans"],
                        block["instants"], block["open"], idmap)
        for digest in block["machines"]:
            session.register_machine(digest)
    for extra in extras:
        session.registry.merge(extra)
    session.timeline.dropped += dropped


def _rename_prefix(name: str, renames: Sequence[Tuple[str, str]]) -> str:
    """Map a worker-local metric/track name onto its global prefix."""
    for local, swap in renames:
        if name == local:
            return swap
        if name.startswith(local + "."):
            return swap + name[len(local):]
    return name


def run_sharded(config: ClusterConfig, seed: int = 0xC0FFEE,
                distribution: Optional[ServiceDistribution] = None,
                horizon: Optional[int] = None,
                transport: str = "process") -> ClusterRunResult:
    """Run one cluster partitioned over shard engines.

    Byte-identical to :func:`~repro.cluster.run.run_cluster` with
    ``shards=1`` (same streams, same draw order, same summary); the
    mirror cross-check at the end audits the protocol on every run.
    """
    if transport not in TRANSPORTS:
        raise ConfigError(
            f"unknown shard transport {transport!r}; known: "
            f"{', '.join(TRANSPORTS)}")
    horizon = horizon if horizon is not None else config.horizon()
    partitions = shard_node_ids(config.nodes, config.shards)

    streams = RngStreams(seed)
    engine = Engine()
    label = config.workload_label()
    proxies = [_ProxyNode(engine, node_id, config.design)
               for node_id in range(config.nodes)]
    if config.placement == "same-rack":
        eligible = [p for p in proxies if p.node_id % config.racks == 0]
    else:
        eligible = proxies
    balancer = LoadBalancer(eligible, config.policy,
                            rng=streams.stream(f"{label}.lb"),
                            probe_delay_cycles=config.probe_delay_cycles,
                            engine=engine)
    fabric = Fabric(
        engine,
        stream_factory=lambda link: streams.stream(f"{label}.net.{link}"),
        default_link=config.link)
    for proxy in proxies:
        spec = node_link_spec(config, proxy.node_id)
        if spec is not config.link:
            fabric.set_link(CLIENT, proxy.name, spec)
            fabric.set_link(proxy.name, CLIENT, spec)
    service = ShardedClusterService(
        engine, proxies, balancer, fabric, fanout=config.fanout,
        segments=config.segments, rtt_cycles=config.rtt_cycles,
        hedge_after=config.hedge_after)
    drive_workload(service, config, streams, distribution)

    import repro.obs as obs
    import repro.obs.spans as spans
    session = obs.active()
    collect_obs = session is not None
    span_store = spans.active()
    collect_spans = span_store is not None
    if (transport == "process"
            and multiprocessing.current_process().daemon):
        # daemonic pool workers (the parallel evaluation runner) may
        # not fork children; inline shards produce the same bytes
        transport = "inline"
    if transport == "inline":
        shards: List[Any] = [_InlineShard(config, seed, ids, collect_obs,
                                          collect_spans)
                             for ids in partitions]
    else:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        shards = [_ProcessShard(config, seed, ids, ctx, collect_obs,
                                collect_spans)
                  for ids in partitions]
    try:
        decoupled = (config.policy in OUTBOUND_INDEPENDENT
                     and config.hedge_after is None)
        if decoupled:
            stats = _run_decoupled(service, shards, config, seed,
                                   distribution, horizon)
        else:
            stats = _run_windowed(service, shards, config, horizon)
        finals = [shard.finish() for shard in shards]
    finally:
        for shard in shards:
            shard.stop()
    _fold_final_stats(service, proxies, finals)
    if collect_obs:
        _merge_worker_obs(session, [shard.obs_payload for shard in shards])
    if collect_spans:
        for shard in shards:
            span_store.merge_fragments(shard.span_payload)
    stats.update({
        "transport": transport,
        "shards": config.shards,
        "spin_hits": sum(s.spin_hits for s in shards),
        "parks": sum(s.parks for s in shards),
    })
    service.pdes = stats
    return ClusterRunResult(config=config, engine=engine, service=service,
                            summary=summarize_run(service))
