"""The datacenter network fabric.

A :class:`Fabric` carries messages between named endpoints ("client",
"node0", ...) on the shared engine. Each directed link has a
:class:`LinkSpec`: a fixed one-way base latency, an exponential jitter
component (the switching/queueing wobble every real fabric has), and a
drop probability. Per-link overrides model heterogeneous topologies
(same-rack vs cross-rack); everything else uses the default spec.

The fabric never retries: loss recovery is the caller's problem (the
cluster front-end hedges, see :mod:`repro.cluster.service`), which is
how μs-scale RPC stacks actually behave -- a retransmit timeout is
milliseconds, three orders of magnitude above the service time.

All randomness comes from caller-supplied ``random.Random`` state so a
cluster run is reproducible under :class:`~repro.sim.rng.RngStreams`.
Two wiring styles exist:

- one shared ``rng`` for the whole fabric (the legacy mode, still used
  by direct constructions in tests); or
- a ``stream_factory`` mapping each *directed link* ``"src->dst"`` to
  its own named stream. Per-link streams make the draw sequence of a
  link depend only on the traffic crossing *that* link -- the property
  the parallel-in-time sharded runtime (:mod:`repro.cluster.pdes`)
  needs so a worker process can reproduce its links' draws without
  seeing any other shard's traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.engine import Engine

from random import Random


@dataclass(frozen=True)
class LinkSpec:
    """One directed link's latency distribution and loss rate.

    ``base_cycles`` is the deterministic propagation + serialization
    floor; ``jitter_mean_cycles`` the mean of an additive exponential
    jitter term (0 disables it); ``drop_prob`` the i.i.d. probability
    that a message vanishes in transit.
    """

    base_cycles: int = 2_000          # ~0.7 us one-way at 3 GHz
    jitter_mean_cycles: float = 500.0
    drop_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.base_cycles < 1:
            raise ConfigError(
                f"base latency must be >= 1 cycle, got {self.base_cycles}")
        if self.jitter_mean_cycles < 0:
            raise ConfigError(
                f"jitter mean must be >= 0, got {self.jitter_mean_cycles}")
        if not 0.0 <= self.drop_prob < 1.0:
            raise ConfigError(
                f"drop probability must be in [0, 1), got {self.drop_prob}")

    def sample_delay(self, rng: Random) -> int:
        """Draw one one-way delay in cycles."""
        delay = float(self.base_cycles)
        if self.jitter_mean_cycles > 0:
            delay += rng.expovariate(1.0 / self.jitter_mean_cycles)
        return max(1, int(round(delay)))


class Fabric:
    """Message transport between cluster endpoints.

    :meth:`send` either drops the message immediately (returning False,
    so the sender can account the loss synchronously) or schedules the
    delivery callback after a sampled one-way delay. ``in_flight``
    counts messages on the wire, which the conservation audit needs
    when a run stops at a horizon with deliveries still pending.
    """

    def __init__(self, engine: Engine, rng: Optional[Random] = None,
                 default_link: LinkSpec = LinkSpec(),
                 stream_factory: Optional[Callable[[str], Random]] = None):
        if (rng is None) == (stream_factory is None):
            raise ConfigError(
                "a fabric needs exactly one randomness source: either a "
                "shared rng or a per-link stream_factory")
        self.engine = engine
        self.rng = rng
        self.stream_factory = stream_factory
        self._link_rngs: Dict[Tuple[str, str], Random] = {}
        self.default_link = default_link
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.in_flight = 0
        self.latency_cycles = 0   # summed sampled delays, for mean latency
        # out-of-machine component: register with the ambient obs
        # session (if any) so snapshots carry fabric counters
        self._obs_registered = False
        import repro.obs as obs
        session = obs.active()
        if session is not None:
            session.register_source("cluster.fabric", self._fill_metrics)
            self._obs_registered = True

    # ------------------------------------------------------------------
    def set_link(self, src: str, dst: str, spec: LinkSpec) -> None:
        """Override the spec for the directed ``src -> dst`` link."""
        self._links[(src, dst)] = spec

    def link_for(self, src: str, dst: str) -> LinkSpec:
        return self._links.get((src, dst), self.default_link)

    def rng_for(self, src: str, dst: str) -> Random:
        """The stream the ``src -> dst`` link draws from (shared rng in
        legacy mode, a lazily created per-link stream otherwise)."""
        if self.stream_factory is None:
            return self.rng
        key = (src, dst)
        rng = self._link_rngs.get(key)
        if rng is None:
            rng = self._link_rngs[key] = self.stream_factory(f"{src}->{dst}")
        return rng

    # ------------------------------------------------------------------
    def send(self, src: str, dst: str,
             fn: Callable[..., Any], *args: Any) -> bool:
        """Carry one message; returns False if the fabric dropped it."""
        return self.send_traced(src, dst, fn, *args) is not None

    def send_traced(self, src: str, dst: str,
                    fn: Callable[..., Any], *args: Any) -> Optional[int]:
        """Like :meth:`send`, but returns the absolute delivery time
        (``None`` when dropped) -- the sharded runtime needs the
        timestamp to ship the message cross-process."""
        self.sent += 1
        spec = self.link_for(src, dst)
        rng = self.rng_for(src, dst)
        if spec.drop_prob > 0.0 and rng.random() < spec.drop_prob:
            self.dropped += 1
            return None
        delay = spec.sample_delay(rng)
        self.latency_cycles += delay
        self.in_flight += 1
        self.engine.after(delay, self._deliver, fn, args)
        return self.engine.now + delay

    def _deliver(self, fn: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        self.in_flight -= 1
        self.delivered += 1
        fn(*args)

    # ------------------------------------------------------------------
    def mean_delay_cycles(self) -> float:
        """Mean sampled one-way delay over every carried message."""
        carried = self.sent - self.dropped
        return self.latency_cycles / carried if carried else 0.0

    def _fill_metrics(self, registry, prefix: str) -> None:
        registry.inc(f"{prefix}.sent", self.sent)
        registry.inc(f"{prefix}.delivered", self.delivered)
        registry.inc(f"{prefix}.dropped", self.dropped)
        registry.inc(f"{prefix}.latency_cycles", self.latency_cycles)
        registry.set(f"{prefix}.in_flight", self.in_flight)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Fabric sent={self.sent} delivered={self.delivered}"
                f" dropped={self.dropped} in_flight={self.in_flight}>")
