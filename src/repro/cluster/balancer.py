"""Load-balancing policies for the cluster front-end.

Four classics, in increasing order of information used:

- ``random`` -- uniform choice, no state consulted;
- ``round-robin`` -- cycle through the nodes, no state consulted;
- ``p2c`` -- power-of-two-choices: sample two nodes, send to the less
  loaded (captures most of JSQ's benefit with O(1) state probes);
- ``jsq`` -- join-shortest-queue: global minimum of in-flight requests
  (the omniscient upper bound a real balancer only approximates).

Load is each node's admitted-but-unfinished count
(:meth:`~repro.cluster.node.ClusterNode.in_flight`). By default the
balancer reads it exactly (the omniscient oracle); a real balancer
probes periodically and routes on stale counts, which
``probe_delay_cycles`` models: with a delay of ``D``, every load read
comes from a snapshot of all nodes refreshed at most once per ``D``
cycles. ``probe_delay_cycles=0`` (the default) is the exact oracle and
byte-identical to the pre-staleness behavior.

``pick(exclude=...)`` supports replica selection for hedged requests:
a hedge must land on a node the shard has not already tried.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.cluster.node import ClusterNode
from repro.sim.engine import Engine

from random import Random

#: The policy names, in the order tables report them.
POLICIES = ("random", "round-robin", "jsq", "p2c")


class LoadBalancer:
    """Routes shard requests to cluster nodes under one policy."""

    def __init__(self, nodes: Sequence[ClusterNode], policy: str = "p2c",
                 rng: Optional[Random] = None,
                 probe_delay_cycles: int = 0,
                 engine: Optional[Engine] = None):
        if not nodes:
            raise ConfigError("a balancer needs at least one node")
        if policy not in POLICIES:
            raise ConfigError(
                f"unknown policy {policy!r}; known: {list(POLICIES)}")
        if policy in ("random", "p2c") and rng is None:
            raise ConfigError(f"policy {policy!r} needs an rng")
        if probe_delay_cycles < 0:
            raise ConfigError(
                f"probe delay must be >= 0 cycles, got "
                f"{probe_delay_cycles}")
        if probe_delay_cycles > 0 and engine is None:
            raise ConfigError(
                "a stale balancer (probe_delay_cycles > 0) needs the "
                "engine to timestamp its probe snapshots")
        self.nodes = list(nodes)
        self.policy = policy
        self.rng = rng
        self.probe_delay_cycles = probe_delay_cycles
        self.engine = engine
        self.probes = 0               # snapshot refreshes taken
        self.picks = 0
        self._rr_next = 0
        self._probe_cache: Dict[int, int] = {}
        self._probe_time: Optional[int] = None

    # ------------------------------------------------------------------
    def _load(self, node: ClusterNode) -> int:
        """The load signal jsq/p2c route on: exact, or a cached probe
        snapshot no older than ``probe_delay_cycles``."""
        if self.probe_delay_cycles == 0:
            return node.in_flight()
        now = self.engine.now
        if (self._probe_time is None
                or now - self._probe_time >= self.probe_delay_cycles):
            self._probe_cache = {n.node_id: n.in_flight()
                                 for n in self.nodes}
            self._probe_time = now
            self.probes += 1
        return self._probe_cache[node.node_id]

    # ------------------------------------------------------------------
    def pick(self, exclude: Tuple[ClusterNode, ...] = ()) -> ClusterNode:
        """Choose a node; ``exclude`` lists replicas already tried.

        If exclusion empties the candidate set (hedging on a cluster
        smaller than the retry budget) the full set is used again.
        """
        candidates = [n for n in self.nodes if n not in exclude]
        if not candidates:
            candidates = self.nodes
        self.picks += 1
        if self.policy == "random":
            return self.rng.choice(candidates)
        if self.policy == "round-robin":
            return self._pick_rr(candidates)
        if self.policy == "jsq":
            return min(candidates,
                       key=lambda n: (self._load(n), n.node_id))
        # p2c: two distinct probes when possible, less loaded wins,
        # lower id on ties (deterministic)
        if len(candidates) == 1:
            return candidates[0]
        first, second = self.rng.sample(candidates, 2)
        if (self._load(second), second.node_id) \
                < (self._load(first), first.node_id):
            return second
        return first

    def _pick_rr(self, candidates) -> ClusterNode:
        # advance the global pointer until it lands on a candidate, so
        # excluded nodes are skipped without desynchronizing the cycle
        for _ in range(len(self.nodes)):
            node = self.nodes[self._rr_next % len(self.nodes)]
            self._rr_next = (self._rr_next + 1) % len(self.nodes)
            if node in candidates:
                return node
        return candidates[0]  # unreachable: candidates is non-empty

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<LoadBalancer {self.policy} nodes={len(self.nodes)}"
                f" picks={self.picks}>")
