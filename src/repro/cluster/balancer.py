"""Load-balancing policies for the cluster front-end.

Four classics, in increasing order of information used:

- ``random`` -- uniform choice, no state consulted;
- ``round-robin`` -- cycle through the nodes, no state consulted;
- ``p2c`` -- power-of-two-choices: sample two nodes, send to the less
  loaded (captures most of JSQ's benefit with O(1) state probes);
- ``jsq`` -- join-shortest-queue: global minimum of in-flight requests
  (the omniscient upper bound a real balancer only approximates).

Load is each node's admitted-but-unfinished count
(:meth:`~repro.cluster.node.ClusterNode.in_flight`), which the
simulation knows exactly; a real JSQ would pay a staleness penalty the
paper's transition-tax argument is orthogonal to, so we keep the
oracle.

``pick(exclude=...)`` supports replica selection for hedged requests:
a hedge must land on a node the shard has not already tried.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.cluster.node import ClusterNode

from random import Random

#: The policy names, in the order tables report them.
POLICIES = ("random", "round-robin", "jsq", "p2c")


class LoadBalancer:
    """Routes shard requests to cluster nodes under one policy."""

    def __init__(self, nodes: Sequence[ClusterNode], policy: str = "p2c",
                 rng: Optional[Random] = None):
        if not nodes:
            raise ConfigError("a balancer needs at least one node")
        if policy not in POLICIES:
            raise ConfigError(
                f"unknown policy {policy!r}; known: {list(POLICIES)}")
        if policy in ("random", "p2c") and rng is None:
            raise ConfigError(f"policy {policy!r} needs an rng")
        self.nodes = list(nodes)
        self.policy = policy
        self.rng = rng
        self.picks = 0
        self._rr_next = 0

    # ------------------------------------------------------------------
    def pick(self, exclude: Tuple[ClusterNode, ...] = ()) -> ClusterNode:
        """Choose a node; ``exclude`` lists replicas already tried.

        If exclusion empties the candidate set (hedging on a cluster
        smaller than the retry budget) the full set is used again.
        """
        candidates = [n for n in self.nodes if n not in exclude]
        if not candidates:
            candidates = self.nodes
        self.picks += 1
        if self.policy == "random":
            return self.rng.choice(candidates)
        if self.policy == "round-robin":
            return self._pick_rr(candidates)
        if self.policy == "jsq":
            return min(candidates,
                       key=lambda n: (n.in_flight(), n.node_id))
        # p2c: two distinct probes when possible, less loaded wins,
        # lower id on ties (deterministic)
        if len(candidates) == 1:
            return candidates[0]
        first, second = self.rng.sample(candidates, 2)
        if (second.in_flight(), second.node_id) \
                < (first.in_flight(), first.node_id):
            return second
        return first

    def _pick_rr(self, candidates) -> ClusterNode:
        # advance the global pointer until it lands on a candidate, so
        # excluded nodes are skipped without desynchronizing the cycle
        for _ in range(len(self.nodes)):
            node = self.nodes[self._rr_next % len(self.nodes)]
            self._rr_next = (self._rr_next + 1) % len(self.nodes)
            if node in candidates:
                return node
        return candidates[0]  # unreachable: candidates is non-empty

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<LoadBalancer {self.policy} nodes={len(self.nodes)}"
                f" picks={self.picks}>")
