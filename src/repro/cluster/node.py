"""One machine of the simulated datacenter.

A :class:`ClusterNode` wraps a server backend -- any implementation of
the :class:`~repro.backends.base.ServerBackend` protocol, selected by
name from the string-keyed registry (``"model"`` for the behavioral
:class:`~repro.distributed.rpc.RpcServerModel`, ``"isa"`` for the full
ISA-level machine) and serving one design (hw-threads, sw-threads, or
event-loop -- the per-node design is the experiment variable) -- and
adds what the cluster layer needs on top:

- admission control with a bounded in-flight limit (``queue_limit``),
  so overload sheds load instead of queueing unboundedly;
- exact conservation counters -- at any instant
  ``admitted == completed + in_flight`` per node, which
  ``tests/test_property_invariants.py`` asserts under random schedules;
- a per-node metric namespace (``cluster.node{N}.*``) and a busy/idle
  timeline track when an obs session is active;
- a per-node :class:`~repro.sim.trace.Tracer` whose counters the
  cluster service merges across nodes (``Tracer.merge``).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.arch.costs import CostModel
from repro.backends import create_backend
from repro.distributed.rpc import ServerDesign
from repro.errors import ConfigError
from repro.obs.timeline import ThreadState
from repro.sim.engine import Engine
from repro.sim.trace import Tracer


class ClusterNode:
    """One server machine: an RPC server plus cluster bookkeeping."""

    def __init__(self, engine: Engine, node_id: int, design: ServerDesign,
                 costs: Optional[CostModel] = None, cores: int = 1,
                 queue_limit: Optional[int] = None,
                 resident_threads: Optional[int] = None,
                 backend: str = "model", register_obs: bool = True,
                 coherence: Optional[str] = None):
        if node_id < 0:
            raise ConfigError(f"node id must be >= 0, got {node_id}")
        if queue_limit is not None and queue_limit < 1:
            raise ConfigError(
                f"queue limit must be >= 1, got {queue_limit}")
        self.engine = engine
        self.node_id = node_id
        self.name = f"node{node_id}"
        self.queue_limit = queue_limit
        self.backend_name = backend
        # a datacenter node keeps a thread-per-connection worker pool
        # resident; the caller sizes it to the node's fan-in
        self.server = create_backend(
            backend, engine, design, costs=costs, cores=cores,
            resident_threads=resident_threads, coherence=coherence)
        self.tracer = Tracer(engine)
        self.admitted = 0
        self.completed = 0
        self.rejected = 0
        self._in_flight = 0
        # observability: a per-node metric namespace and a busy/idle
        # timeline track, only when a session is active. A PDES shard
        # worker passes register_obs=False: its nodes are mirrored by
        # client-side proxies which own the obs registration, so a
        # sharded snapshot carries exactly the single-engine namespaces.
        self._obs_timeline = None
        self._obs_track = 0
        import repro.obs as obs
        session = obs.active() if register_obs else None
        if session is not None:
            prefix = session.register_source("cluster.node",
                                             self._fill_metrics)
            self._obs_timeline = session.timeline
            self._obs_track = session.register_track(
                f"{prefix}.{design.name}")
        # distributed tracing: node-side span fragments (admission,
        # completion, and -- via the backend's sink -- demand). Unlike
        # register_obs this is NOT suppressed in PDES shard workers:
        # fragments are recorded where the node lives and shipped home.
        import repro.obs.spans as spans
        self._spans = spans.active()
        if self._spans is not None:
            self.server.span_sink = self._spans

    # ------------------------------------------------------------------
    @property
    def design(self) -> ServerDesign:
        return self.server.design

    def in_flight(self) -> int:
        """Requests admitted but not finished (the balancer's load signal)."""
        return self._in_flight

    def busy_cycles(self) -> int:
        return self.server.cpu_busy_cycles()

    # ------------------------------------------------------------------
    def offer(self, request_id: int, segment_cycles: Sequence[float],
              rtt_cycles: int,
              on_done: Optional[Callable[[], None]] = None) -> bool:
        """A shard request reaches this node; False when shed at admission."""
        if self.queue_limit is not None \
                and self._in_flight >= self.queue_limit:
            self.rejected += 1
            self.tracer.count("cluster node rejected")
            if self._spans is not None:
                self._spans.node_reject(request_id, self.engine.now)
            return False
        self.admitted += 1
        self._in_flight += 1
        self.tracer.count("cluster node admitted")
        if self._spans is not None:
            self._spans.node_admit(request_id, self.engine.now)
        if self._obs_timeline is not None and self._in_flight == 1:
            self._obs_timeline.transition(self._obs_track, 0,
                                          ThreadState.RUNNING,
                                          self.engine.now)
        self.server.submit(request_id, list(segment_cycles), rtt_cycles,
                           on_done=lambda: self._finished(request_id,
                                                          on_done))
        return True

    def _finished(self, request_id: int,
                  on_done: Optional[Callable[[], None]]) -> None:
        self._in_flight -= 1
        self.completed += 1
        self.tracer.count("cluster node completed")
        if self._spans is not None:
            self._spans.node_done(request_id, self.engine.now)
        if self._obs_timeline is not None and self._in_flight == 0:
            self._obs_timeline.transition(self._obs_track, 0,
                                          ThreadState.MWAIT,
                                          self.engine.now)
        if on_done is not None:
            on_done()

    # ------------------------------------------------------------------
    def conserved(self) -> bool:
        """The node-local conservation law."""
        return self.admitted == self.completed + self._in_flight

    def _fill_metrics(self, registry, prefix: str) -> None:
        registry.inc(f"{prefix}.admitted", self.admitted)
        registry.inc(f"{prefix}.completed", self.completed)
        registry.inc(f"{prefix}.rejected", self.rejected)
        registry.inc(f"{prefix}.busy_cycles", self.busy_cycles())
        registry.set(f"{prefix}.in_flight", self._in_flight)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ClusterNode {self.name} {self.design.name}"
                f" in_flight={self._in_flight}>")
