"""The two IPC mechanisms.

Baseline microkernel IPC (seL4/Mach lineage, as the paper characterizes
it): the client traps into the kernel (privilege mode switch), the
kernel enqueues the message and invokes the scheduler to dispatch the
service thread (scheduler + software context switch + cache pollution),
and the reply retraces the same path. That double traversal is the
"potentially excessive scheduling delays" of Section 2.

Proposed IPC: the client ``rpush``-es arguments into the (disabled)
service ptid, ``start``-s it, and ``mwait``-s on the reply word; the
service's reply write wakes the client. Per direction: one ptid start
plus a register push plus a monitor wakeup -- tens of cycles.

Both classes expose ``one_way_cycles`` / ``rtt_cycles`` closed forms and
a ``call`` sub-generator for engine-driven runs with queueing.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.kernel.threads import ContextSwitchAccounting
from repro.sim.engine import Engine
from repro.sim.process import Signal


class _ServiceQueue:
    """One service thread draining a FIFO of calls (software queuing)."""

    def __init__(self, engine: Engine, dispatch_cycles: int):
        self.engine = engine
        self.dispatch_cycles = dispatch_cycles
        self._queue: Deque[Tuple[int, Signal]] = deque()
        self._arrival = Signal("svc.arrival")
        self.busy_cycles = 0
        self.calls_served = 0
        engine.spawn(self._serve(), name="svc.thread")

    def submit(self, work_cycles: int) -> Signal:
        done = Signal("svc.done")
        self._queue.append((max(1, work_cycles), done))
        self._arrival.fire()
        return done

    def _serve(self):
        while True:
            while not self._queue:
                yield self._arrival
            work, done = self._queue.popleft()
            if self.dispatch_cycles:
                yield self.dispatch_cycles
            yield work
            self.busy_cycles += work
            self.calls_served += 1
            done.fire()


class SchedulerIpc:
    """Baseline: kernel-mediated IPC through the scheduler."""

    name = "scheduler"

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None,
                 accounting: Optional[ContextSwitchAccounting] = None):
        self.engine = engine
        self.costs = costs or CostModel()
        self.accounting = accounting or ContextSwitchAccounting(self.costs)
        self.calls = 0
        # dispatching the service thread costs a scheduler pass plus a
        # software context switch (charged per call inside the queue)
        self._service = _ServiceQueue(engine, self._dispatch_cycles())

    def _dispatch_cycles(self) -> int:
        return (self.costs.scheduler_cycles + self.costs.sw_switch_cycles
                + self.costs.cache_pollution_cycles)

    def one_way_cycles(self) -> int:
        """Client-to-service handoff overhead (excluding service work)."""
        return self.costs.mode_switch_cycles + self._dispatch_cycles()

    def rtt_cycles(self, service_work_cycles: int = 0) -> int:
        """Closed-form round trip: both directions plus the work."""
        return 2 * self.one_way_cycles() + service_work_cycles

    def call(self, service_work_cycles: int):
        """Sub-generator: one synchronous IPC (with real queueing)."""
        self.calls += 1
        self.accounting.charge_mode_switch()
        yield self.costs.mode_switch_cycles        # trap into the kernel
        self.accounting.charge_scheduler()
        self.accounting.charge_switch()
        done = self._service.submit(service_work_cycles)
        yield done                                 # service work (queued)
        # reply path: wake the client through the scheduler again
        self.accounting.charge_mode_switch()
        self.accounting.charge_scheduler()
        self.accounting.charge_switch()
        yield self.one_way_cycles()


class DirectStartIpc:
    """Proposed: the client starts the service's hardware thread."""

    name = "direct-start"

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None,
                 tier: str = "rf"):
        if tier not in ("rf", "l2", "l3"):
            raise ConfigError(f"unknown storage tier {tier!r}")
        self.engine = engine
        self.costs = costs or CostModel()
        self.tier = tier
        self.calls = 0
        self._service = _ServiceQueue(engine, self._dispatch_cycles())

    def _dispatch_cycles(self) -> int:
        # starting the service ptid (it re-disables itself when idle)
        return self.costs.hw_start_cycles(self.tier)

    def one_way_cycles(self) -> int:
        """Handoff overhead: rpush args + start the target ptid."""
        return self.costs.rpull_rpush_cycles + self._dispatch_cycles()

    def rtt_cycles(self, service_work_cycles: int = 0) -> int:
        """Round trip: handoff, work, reply-write wakeup."""
        return (self.one_way_cycles() + service_work_cycles
                + self.costs.monitor_wakeup_cycles
                + self.costs.hw_start_cycles(self.tier))

    def call(self, service_work_cycles: int):
        """Sub-generator: one synchronous direct-start IPC."""
        self.calls += 1
        yield self.costs.rpull_rpush_cycles        # pass parameters
        done = self._service.submit(service_work_cycles)
        yield done                                 # service work (queued)
        # reply write wakes the mwait-ing client
        yield (self.costs.monitor_wakeup_cycles
               + self.costs.hw_start_cycles(self.tier))
