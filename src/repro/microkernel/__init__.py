"""Microkernel IPC: scheduler-mediated vs direct hardware-thread start.

Section 2 ("Faster Microkernels and Container Proxies"): "when an
application wishes to communicate with a microkernel service such as
the file system or the network stack, it can directly start the
service's hardware thread achieving the same result as XPC [30] while
using a simpler hardware mechanism. There is no need to move into
kernel space and invoke the scheduler."

- :mod:`repro.microkernel.ipc` -- the two call mechanisms and a
  ping-pong round-trip measurement.
- :mod:`repro.microkernel.services` -- a service (file system, network
  stack, container proxy) serving a client population through either
  mechanism, for latency-under-load comparisons.
"""

from repro.microkernel.ipc import DirectStartIpc, SchedulerIpc
from repro.microkernel.services import (
    ClosedLoopClients,
    MicrokernelService,
    ServiceClient,
)

__all__ = [
    "SchedulerIpc",
    "DirectStartIpc",
    "MicrokernelService",
    "ServiceClient",
    "ClosedLoopClients",
]
