"""Microkernel services and the clients that call them.

A :class:`MicrokernelService` names a service (file system, network
stack, container proxy) and its per-operation cost profile; a
:class:`ServiceClient` issues a stream of calls through whichever IPC
mechanism the experiment provides and records per-call latency.

E07 sweeps the call rate: at low rate the mechanisms differ by their
constant handoff overhead; approaching saturation the baseline's
dispatch tax (scheduler + switch inside the service loop) caps its
throughput well below the direct-start design's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.stats import LatencyRecorder
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.service import ServiceDistribution


@dataclass(frozen=True)
class MicrokernelService:
    """A named service with per-operation service-time profiles."""

    name: str
    operations: Dict[str, ServiceDistribution]

    def operation(self, op: str) -> ServiceDistribution:
        if op not in self.operations:
            raise ConfigError(
                f"service {self.name!r} has no operation {op!r}; "
                f"known: {sorted(self.operations)}")
        return self.operations[op]


def filesystem_service(read_cycles: int = 1_200,
                       write_cycles: int = 2_500) -> MicrokernelService:
    """A file-system service ("File systems as processes" [54])."""
    from repro.workloads.service import Exponential
    return MicrokernelService("fs", {
        "read": Exponential(read_cycles),
        "write": Exponential(write_cycles),
    })


def netstack_service(rx_cycles: int = 900,
                     tx_cycles: int = 700) -> MicrokernelService:
    """A user-level network stack (TAS [48], Snap [55])."""
    from repro.workloads.service import Exponential
    return MicrokernelService("netstack", {
        "rx": Exponential(rx_cycles),
        "tx": Exponential(tx_cycles),
    })


def container_proxy_service(filter_cycles: int = 600,
                            route_cycles: int = 1_100) -> MicrokernelService:
    """A sidecar container proxy (Istio [15]).

    Section 2: "Container proxies would benefit from the direct
    transfer of control between the container and the proxy hardware
    threads." Every request traverses the proxy twice (ingress filter,
    egress route), so the per-hop IPC tax is doubled -- exactly the
    workload where the direct-start mechanism pays.
    """
    from repro.workloads.service import Exponential
    return MicrokernelService("container-proxy", {
        "filter": Exponential(filter_cycles),
        "route": Exponential(route_cycles),
    })


class ClosedLoopClients:
    """N clients in a think-call loop (closed-loop population).

    The classic interactive model: each client thinks for
    ``think_cycles`` (exponential), issues one synchronous call, waits
    for it, and repeats. Offered load self-regulates with service
    latency, which is why closed-loop throughput curves saturate
    gracefully instead of diverging -- the natural regime for comparing
    IPC mechanisms at their respective capacity limits.
    """

    def __init__(self, engine: Engine, ipc, service: MicrokernelService,
                 operation: str, clients: int, think_cycles: float,
                 rng: random.Random, calls_per_client: int,
                 name: str = "closed"):
        if clients < 1:
            raise ConfigError("need at least one client")
        if calls_per_client < 1:
            raise ConfigError("need at least one call per client")
        if think_cycles < 0:
            raise ConfigError("think time must be non-negative")
        self.engine = engine
        self.ipc = ipc
        self.clients = clients
        self.think_cycles = float(think_cycles)
        self.rng = rng
        self.calls_per_client = calls_per_client
        self.recorder = LatencyRecorder(f"{name}.latency")
        self.finished_clients = 0
        self.finished_at: Optional[int] = None
        self._dist = service.operation(operation)
        for index in range(clients):
            engine.spawn(self._client_loop(index), name=f"{name}.c{index}")

    def _client_loop(self, index: int):
        for _ in range(self.calls_per_client):
            if self.think_cycles:
                yield max(1, int(self.rng.expovariate(
                    1.0 / self.think_cycles)))
            work = max(1, int(round(self._dist.sample(self.rng))))
            started = self.engine.now
            yield from self.ipc.call(work)
            self.recorder.record(self.engine.now - started)
        self.finished_clients += 1
        if self.finished_clients == self.clients:
            self.finished_at = self.engine.now

    @property
    def completed(self) -> int:
        return self.recorder.count

    def throughput_per_kcycle(self) -> float:
        """Completed calls per thousand cycles of wall time."""
        if self.finished_at is None or self.finished_at == 0:
            raise ConfigError("clients not finished")
        return 1000.0 * self.completed / self.finished_at


class ServiceClient:
    """An open-loop client calling one service operation through an IPC
    mechanism, recording per-call latency."""

    def __init__(self, engine: Engine, ipc, service: MicrokernelService,
                 operation: str, arrivals: ArrivalProcess,
                 rng: random.Random, max_calls: int,
                 name: str = "client"):
        if max_calls < 1:
            raise ConfigError("need at least one call")
        self.engine = engine
        self.ipc = ipc
        self.service = service
        self.operation = operation
        self.arrivals = arrivals
        self.rng = rng
        self.max_calls = max_calls
        self.name = name
        self.recorder = LatencyRecorder(f"{name}.latency")
        self.calls_issued = 0
        self.finished_at: Optional[int] = None
        self._dist = service.operation(operation)
        self._in_flight = 0
        self._spawn_arrivals()

    # ------------------------------------------------------------------
    def _spawn_arrivals(self) -> None:
        gaps = self.arrivals.gaps(self.rng)

        def schedule_next() -> None:
            if self.calls_issued >= self.max_calls:
                return
            gap = max(1, int(round(next(gaps))))
            self.engine.after(gap, issue)

        def issue() -> None:
            self.calls_issued += 1
            work = max(1, int(round(self._dist.sample(self.rng))))
            self.engine.spawn(self._one_call(work),
                              name=f"{self.name}.call{self.calls_issued}")
            schedule_next()

        schedule_next()

    def _one_call(self, work: int):
        self._in_flight += 1
        started = self.engine.now
        yield from self.ipc.call(work)
        self.recorder.record(self.engine.now - started)
        self._in_flight -= 1
        if (self.calls_issued >= self.max_calls and self._in_flight == 0):
            self.finished_at = self.engine.now

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return self.recorder.count

    def throughput_per_kcycle(self) -> float:
        """Completed calls per thousand cycles of wall time."""
        if self.finished_at is None or self.finished_at == 0:
            raise ConfigError(f"client {self.name} not finished")
        return 1000.0 * self.completed / self.finished_at
