"""Cross-machine mwait: RDMA-style remote stores into mailbox lines.

The cluster layer today delivers remote events at the *callback* level:
:class:`~repro.cluster.fabric.Fabric` carries a Python closure and the
receiving side models the software wakeup chain analytically
(:mod:`repro.distributed.rpc`). This module is the hardware
alternative the paper's primitives make possible: node B issues a
remote store that travels the same fabric but lands directly in node
A's *memory* -- through A's watch bus, so a ptid parked on
``monitor``/``mwait`` over its mailbox line wakes with the hardware
wakeup cost (plus directory forwarding when a
:class:`~repro.coherence.directory.DirectoryModel` is attached),
instead of paying the IRQ + scheduler + context-switch chain.

Experiment E17 runs the two deliveries head-to-head over identical
fabric draws (common random numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.fabric import Fabric
from repro.errors import ConfigError
from repro.mem.memory import WORD_BYTES, Memory


@dataclass(frozen=True)
class MailboxWindow:
    """One node's RDMA-registered mailbox region."""

    name: str
    memory: Memory
    base: int
    words: int = 8

    def addr(self, word: int) -> int:
        if not 0 <= word < self.words:
            raise ConfigError(
                f"mailbox word {word} out of range [0, {self.words})")
        return self.base + word * WORD_BYTES


class RemoteStoreFabric:
    """Remote stores over the cluster fabric, delivered as real stores.

    Each destination registers a :class:`MailboxWindow`;
    :meth:`remote_store` then carries ``(word, value)`` over the
    underlying :class:`~repro.cluster.fabric.Fabric` (paying the same
    per-link latency, jitter, and loss as any RPC) and, on delivery,
    performs ``memory.store`` into the destination's mailbox -- which
    is what wakes a parked mwait-er there.
    """

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self.windows: Dict[str, MailboxWindow] = {}
        self.stores_sent = 0
        self.stores_delivered = 0
        self.stores_dropped = 0
        # out-of-machine component: register with the ambient obs
        # session (if any), like the fabric itself does
        import repro.obs as obs
        session = obs.active()
        if session is not None:
            session.register_source("coherence.remote", self._fill_metrics)

    # ------------------------------------------------------------------
    def register(self, name: str, memory: Memory, base: int,
                 words: int = 8) -> MailboxWindow:
        """Expose ``words`` words at ``base`` of ``memory`` as ``name``'s
        remotely writable mailbox."""
        window = MailboxWindow(name=name, memory=memory, base=base,
                               words=words)
        self.windows[name] = window
        return window

    def remote_store(self, src: str, dst: str, word: int,
                     value: int) -> Optional[int]:
        """Store ``value`` into ``dst``'s mailbox ``word`` from ``src``.

        Returns the absolute delivery time, or ``None`` when the fabric
        dropped the message (loss recovery is the caller's problem,
        exactly as for RPCs).
        """
        window = self.windows.get(dst)
        if window is None:
            raise ConfigError(
                f"no mailbox window registered for {dst!r}; known: "
                f"{', '.join(sorted(self.windows)) or '(none)'}")
        addr = window.addr(word)    # validate before the wire
        self.stores_sent += 1
        delivery = self.fabric.send_traced(src, dst, self._deliver,
                                           window, addr, value, src)
        if delivery is None:
            self.stores_dropped += 1
        return delivery

    def _deliver(self, window: MailboxWindow, addr: int, value: int,
                 src: str) -> None:
        self.stores_delivered += 1
        window.memory.store(addr, value, source=f"rdma:{src}")

    # ------------------------------------------------------------------
    def _fill_metrics(self, registry, prefix: str) -> None:
        registry.inc(f"{prefix}.stores_sent", self.stores_sent)
        registry.inc(f"{prefix}.stores_delivered", self.stores_delivered)
        registry.inc(f"{prefix}.stores_dropped", self.stores_dropped)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<RemoteStoreFabric windows={len(self.windows)}"
                f" sent={self.stores_sent}"
                f" delivered={self.stores_delivered}>")
