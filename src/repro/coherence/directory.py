"""MSI-style directory coherence for the watch bus.

The seed models monitor/mwait over a *flat* bus: a write to a watched
line wakes every waiter in the same cycle and costs the writer nothing.
Real hardware keeps watched lines coherent through a directory -- a
waiter arming a monitor pulls the line into the Shared state and
registers in the line's sharer set; a write to a shared line must visit
the directory, invalidate every sharer, and forward the wakeup to each
of them in turn. Those messages are the price of "monitor any line from
anywhere" (Section 3.1), and they grow with the sharer count.

:class:`DirectoryModel` prices exactly that protocol:

- **arm** (``monitor``): allocate/extend the line's directory entry and
  join its sharer set -- ``dir_arm_cycles``, paid by the arming
  instruction;
- **write to a shared line** (``st``/``faa``/DMA): the writer pays
  ``dir_inval_base_cycles + dir_inval_per_sharer_cycles x sharers`` to
  invalidate the set, and each sharer's wakeup is *forwarded* rather
  than instantaneous -- sharer ``i`` (in arm order) sees the write
  after ``dir_forward_cycles + i x dir_inval_per_sharer_cycles +
  dir_disarm_cycles`` (invalidations serialize at the directory; the
  trailing term retires the consumed sharer entry);
- **explicit disarm** (``stop`` of a waiting ptid): the directory entry
  must be retired -- ``dir_disarm_cycles``, returned through
  :meth:`~repro.mem.watch.Watch.cancel` so the stopping instruction can
  charge it.

The model plugs into :class:`~repro.mem.watch.WatchBus` via its
``coherence`` attribute (see :meth:`WatchBus.notify`); with the hook
left at ``None`` -- the default everywhere -- the bus byte-identically
reproduces the seed's flat behavior. A ``"null"`` model (every latency
zero) takes the coherent code path but degenerates to synchronous
delivery, which is what the CI identity gate byte-compares against the
default.

Lines with no sharers are not tracked: the entry is deallocated when
the last sharer leaves (back to I/M from the directory's point of
view), so ordinary stores stay on the fast path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.arch.costs import CostModel
from repro.errors import ConfigError

#: Registered model names (``MachineConfig.coherence`` /
#: ``REPRO_COHERENCE``): ``"directory"`` prices the protocol with the
#: CostModel's ``dir_*`` fields; ``"null"`` runs the same protocol at
#: zero cost (identity audits).
MODEL_NAMES = ("directory", "null")


class DirectoryModel:
    """Per-line sharer sets with invalidation/forward pricing."""

    def __init__(self, costs: Optional[CostModel] = None,
                 engine: Optional[Any] = None,
                 arm_cycles: Optional[int] = None,
                 disarm_cycles: Optional[int] = None,
                 inval_base_cycles: Optional[int] = None,
                 inval_per_sharer_cycles: Optional[int] = None,
                 forward_cycles: Optional[int] = None):
        costs = costs or CostModel()
        self.engine = engine
        self.arm_cycles = (costs.dir_arm_cycles if arm_cycles is None
                           else arm_cycles)
        self.disarm_cycles = (costs.dir_disarm_cycles
                              if disarm_cycles is None else disarm_cycles)
        self.inval_base_cycles = (costs.dir_inval_base_cycles
                                  if inval_base_cycles is None
                                  else inval_base_cycles)
        self.inval_per_sharer_cycles = (
            costs.dir_inval_per_sharer_cycles
            if inval_per_sharer_cycles is None else inval_per_sharer_cycles)
        self.forward_cycles = (costs.dir_forward_cycles
                               if forward_cycles is None else forward_cycles)
        # line -> insertion-ordered sharer set (the watches in S state)
        self._sharers: Dict[int, Dict[Any, None]] = {}
        # stats (harvested into coherence.directory{N}.* metrics)
        self.arms = 0
        self.disarms = 0
        self.writes_shared = 0
        self.writes_untracked = 0
        self.invalidations = 0
        self.forwards = 0
        self.writer_cycles = 0
        self.arm_cycles_total = 0
        self.disarm_cycles_total = 0
        self.forward_cycles_total = 0
        #: writer-side cost of the most recent write through the bus --
        #: the issuing store instruction reads this (see HWCore._op_st)
        self.last_write_cycles = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_name(cls, name: str, costs: Optional[CostModel] = None,
                  engine: Optional[Any] = None) -> "DirectoryModel":
        """Build a registered model variant by name."""
        if name == "directory":
            return cls(costs=costs, engine=engine)
        if name == "null":
            return cls(costs=costs, engine=engine, arm_cycles=0,
                       disarm_cycles=0, inval_base_cycles=0,
                       inval_per_sharer_cycles=0, forward_cycles=0)
        raise ConfigError(
            f"unknown coherence model {name!r}; known models: "
            f"{', '.join(MODEL_NAMES)}")

    # ------------------------------------------------------------------
    # protocol events (called by the WatchBus / Watch)
    # ------------------------------------------------------------------
    def on_arm(self, line: int, watch: Any) -> int:
        """A watch joins ``line``'s sharer set; returns the arm cost."""
        self._sharers.setdefault(line, {})[watch] = None
        self.arms += 1
        self.arm_cycles_total += self.arm_cycles
        return self.arm_cycles

    def on_disarm(self, line: int, watch: Any) -> int:
        """A watch leaves the sharer set; returns the retire cost."""
        entry = self._sharers.get(line)
        if entry is not None:
            entry.pop(watch, None)
            if not entry:
                del self._sharers[line]     # back to I: entry deallocated
        self.disarms += 1
        self.disarm_cycles_total += self.disarm_cycles
        return self.disarm_cycles

    def on_write(self, bus: Any, line: int, addr: int, value: int,
                 source: str) -> int:
        """A write reached ``line``: price it and deliver the wakeups.

        Returns the number of forwards initiated (the coherent analogue
        of the flat bus's fired-watch count).
        """
        entry = self._sharers.get(line)
        if not entry:
            self.writes_untracked += 1
            self.last_write_cycles = 0
            return 0
        sharers = len(entry)
        self.writes_shared += 1
        self.invalidations += sharers
        cost = (self.inval_base_cycles
                + self.inval_per_sharer_cycles * sharers)
        self.last_write_cycles = cost
        self.writer_cycles += cost
        fired = 0
        # copy: forwarding may cancel/re-arm watches (same discipline as
        # the flat bus)
        for index, watch in enumerate(list(entry)):
            if not watch.armed:
                continue
            delay = self.wakeup_delay(index)
            self.forwards += 1
            self.forward_cycles_total += delay
            if delay and self.engine is not None:
                self.engine.after(delay, self._deliver, bus, watch,
                                  addr, value, source)
            else:
                self._deliver(bus, watch, addr, value, source)
            fired += 1
        return fired

    def wakeup_delay(self, index: int) -> int:
        """Forward latency for the ``index``-th sharer of a written line:
        serialized invalidations, the forward hop, and retiring the
        consumed sharer entry."""
        return (self.forward_cycles
                + index * self.inval_per_sharer_cycles
                + self.disarm_cycles)

    def _deliver(self, bus: Any, watch: Any, addr: int, value: int,
                 source: str) -> None:
        # re-check: the watch may have been cancelled while the forward
        # was in flight (a stopped ptid must not wake)
        if watch.armed:
            bus.total_triggers += 1
            watch._trigger(addr, value, source)

    # ------------------------------------------------------------------
    def sharer_count(self, line: int) -> int:
        """Armed sharers the directory tracks for ``line``."""
        return len(self._sharers.get(line, ()))

    def lines_tracked(self) -> int:
        return len(self._sharers)

    def _fill_metrics(self, registry, prefix: str) -> None:
        registry.inc(f"{prefix}.arms", self.arms)
        registry.inc(f"{prefix}.disarms", self.disarms)
        registry.inc(f"{prefix}.writes_shared", self.writes_shared)
        registry.inc(f"{prefix}.writes_untracked", self.writes_untracked)
        registry.inc(f"{prefix}.invalidations", self.invalidations)
        registry.inc(f"{prefix}.forwards", self.forwards)
        registry.inc(f"{prefix}.writer_cycles", self.writer_cycles)
        registry.inc(f"{prefix}.arm_cycles", self.arm_cycles_total)
        registry.inc(f"{prefix}.disarm_cycles", self.disarm_cycles_total)
        registry.inc(f"{prefix}.forward_cycles", self.forward_cycles_total)
        registry.set(f"{prefix}.lines_tracked", self.lines_tracked())

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<DirectoryModel lines={self.lines_tracked()}"
                f" arms={self.arms} invals={self.invalidations}>")
