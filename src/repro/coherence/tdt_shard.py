"""Sharded TDT: per-node partitions with cross-shard resolution cost.

The paper's TDT is a per-machine table (Section 3.2). Lifting it to a
cluster -- so a vtid names a thread on *any* node, the move
"Virtual-Threading" (PAPERS.md) makes within one chip -- shards the
table: vtid ``v`` lives on its *home* shard ``v % n``. A resolution
from the home shard is the ordinary cached walk
(:class:`~repro.hw.tdt.TdtCache`); a resolution from anywhere else must
either hit the caller's bounded remote-entry cache
(``tdt_lookup_cycles``, same as a local hit) or cross the fabric to the
home shard's memory-resident table
(``tdt_cross_shard_cycles + tdt_miss_cycles``).

``invtid`` keeps its paper semantics -- an update is invisible until
explicitly invalidated -- but now the invalidation fans out to every
shard's caches, and under fan-out the *miss amplification* appears:
a caller touching F random vtids sees ~``F x (1 - 1/n)`` of them homed
remotely, so churn that would cost a flat table one 40-cycle walk costs
the sharded table a cross-fabric round trip. Experiment E17 sweeps
exactly that.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.hw.tdt import (
    ENTRY_WORDS,
    Permission,
    TdtCache,
    TdtEntry,
    ThreadDescriptorTable,
)
from repro.mem.memory import Memory

#: Remote TDT entries each caller may cache before FIFO eviction.
DEFAULT_REMOTE_CACHE_ENTRIES = 64


class ShardedTdt:
    """``n`` per-node TDT partitions behind one resolution front-end."""

    def __init__(self, tables: Sequence[ThreadDescriptorTable],
                 costs: Optional[CostModel] = None,
                 remote_cache_entries: int = DEFAULT_REMOTE_CACHE_ENTRIES):
        if not tables:
            raise ConfigError("a sharded TDT needs at least one partition")
        if remote_cache_entries < 1:
            raise ConfigError(
                f"remote cache needs >= 1 entry, got {remote_cache_entries}")
        self.tables = list(tables)
        self.n = len(self.tables)
        self.costs = costs or CostModel()
        self.remote_cache_entries = remote_cache_entries
        # per-shard local translation caches (real TdtCache hardware)
        self._local: List[TdtCache] = [TdtCache(costs=self.costs)
                                       for _ in self.tables]
        # per-caller bounded FIFO caches of *remote* entries
        self._remote: List["OrderedDict[int, TdtEntry]"] = [
            OrderedDict() for _ in self.tables]
        self.local_resolutions = 0
        self.remote_hits = 0
        self.remote_misses = 0
        self.invalidations = 0
        self.cycles_total = 0
        self.cross_shard_cycles = 0
        import repro.obs as obs
        session = obs.active()
        if session is not None:
            session.register_source("coherence.tdt", self._fill_metrics)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, memories: Sequence[Memory], population: int,
              ptid_of=lambda vtid: vtid % 32,
              permissions: Permission = Permission.ALL,
              costs: Optional[CostModel] = None,
              remote_cache_entries: int = DEFAULT_REMOTE_CACHE_ENTRIES
              ) -> "ShardedTdt":
        """Carve one partition out of each node memory and populate it
        with the vtids homed there (``vtid % len(memories)``)."""
        tables = []
        for shard, memory in enumerate(memories):
            region = memory.alloc(f"tdt-shard{shard}",
                                  population * ENTRY_WORDS * 8)
            table = ThreadDescriptorTable(memory, region.base,
                                          capacity=population)
            for vtid in range(shard, population, len(memories)):
                table.set_entry(vtid, ptid_of(vtid), permissions)
            tables.append(table)
        return cls(tables, costs=costs,
                   remote_cache_entries=remote_cache_entries)

    # ------------------------------------------------------------------
    def home(self, vtid: int) -> int:
        return vtid % self.n

    def resolve(self, caller_shard: int, vtid: int) -> Tuple[TdtEntry, int]:
        """Translate ``vtid`` as seen from ``caller_shard``.

        Returns ``(entry, latency_cycles)``.
        """
        if not 0 <= caller_shard < self.n:
            raise ConfigError(
                f"caller shard {caller_shard} out of range [0, {self.n})")
        home = self.home(vtid)
        if home == caller_shard:
            table = self.tables[home]
            entry, cycles = self._local[home].lookup(
                table.memory, table.base, vtid)
            self.local_resolutions += 1
        else:
            cache = self._remote[caller_shard]
            entry = cache.get(vtid)
            if entry is not None:
                cycles = self.costs.tdt_lookup_cycles
                self.remote_hits += 1
            else:
                entry = self.tables[home].get_entry(vtid)
                cycles = (self.costs.tdt_cross_shard_cycles
                          + self.costs.tdt_miss_cycles)
                self.remote_misses += 1
                self.cross_shard_cycles += self.costs.tdt_cross_shard_cycles
                cache[vtid] = entry
                if len(cache) > self.remote_cache_entries:
                    cache.popitem(last=False)
        self.cycles_total += cycles
        return entry, cycles

    def invalidate(self, vtid: int) -> None:
        """Cluster-wide ``invtid``: drop ``vtid`` from every cache."""
        self.invalidations += 1
        home = self.home(vtid)
        table = self.tables[home]
        self._local[home].invalidate(table.base, vtid)
        for cache in self._remote:
            cache.pop(vtid, None)

    def update(self, vtid: int, ptid: int,
               permissions: Permission) -> None:
        """Write ``vtid``'s home entry *and* broadcast the invtid (the
        paper's required sequence)."""
        self.tables[self.home(vtid)].set_entry(vtid, ptid, permissions)
        self.invalidate(vtid)

    # ------------------------------------------------------------------
    def resolutions(self) -> int:
        return (self.local_resolutions + self.remote_hits
                + self.remote_misses)

    def mean_cycles(self) -> float:
        done = self.resolutions()
        return self.cycles_total / done if done else 0.0

    def _fill_metrics(self, registry, prefix: str) -> None:
        registry.inc(f"{prefix}.local_resolutions", self.local_resolutions)
        registry.inc(f"{prefix}.remote_hits", self.remote_hits)
        registry.inc(f"{prefix}.remote_misses", self.remote_misses)
        registry.inc(f"{prefix}.invalidations", self.invalidations)
        registry.inc(f"{prefix}.cycles", self.cycles_total)
        registry.inc(f"{prefix}.cross_shard_cycles", self.cross_shard_cycles)
        registry.set(f"{prefix}.shards", self.n)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ShardedTdt shards={self.n}"
                f" resolutions={self.resolutions()}"
                f" remote_misses={self.remote_misses}>")
