"""Coherence: pricing the paper's primitives at datacenter scale.

Three layers, built bottom-up (see docs/coherence.md):

- :mod:`repro.coherence.directory` -- an MSI-style per-line directory
  behind the watch bus, so ``monitor``/``mwait`` and watched-line
  writes pay real invalidation/forward cycles (off by default;
  byte-identical to the seed's flat bus when off);
- :mod:`repro.coherence.remote` -- cross-machine mwait: RDMA-style
  remote stores into per-node mailbox lines, carried by the cluster
  fabric and delivered as real stores through the destination's watch
  bus;
- :mod:`repro.coherence.tdt_shard` -- per-node TDT partitions with
  cross-shard resolution latency and invtid fan-out.

Experiment E17 caps the subsystem.
"""

from repro.coherence.directory import MODEL_NAMES, DirectoryModel
from repro.coherence.remote import MailboxWindow, RemoteStoreFabric
from repro.coherence.tdt_shard import ShardedTdt

__all__ = [
    "DirectoryModel",
    "MODEL_NAMES",
    "MailboxWindow",
    "RemoteStoreFabric",
    "ShardedTdt",
]
