"""Memory-mapped I/O windows.

Devices expose doorbell/status registers as an address window inside the
shared :class:`~repro.mem.memory.Memory`. Loads and stores inside the
window are redirected to device callbacks, but stores *still* notify the
watch bus -- per the paper, "one can monitor uncachable addresses such as
device memory or memory-mapped I/O registers".
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import MemoryError_
from repro.mem.memory import WORD_BYTES, Region


class MmioRegion:
    """A device register window.

    ``on_store(offset_words, value, source)`` is invoked for writes
    (doorbells); per-offset load values are backed by a small register
    dict the device updates via :meth:`set_reg`.
    """

    def __init__(self, region: Region,
                 on_store: Optional[Callable[[int, int, str], None]] = None,
                 name: str = ""):
        self.region = region
        self.name = name or region.name
        self.on_store = on_store
        self._regs: Dict[int, int] = {}
        self.store_count = 0
        self.load_count = 0

    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        return self.region.contains(addr)

    def handle_load(self, addr: int) -> int:
        self.load_count += 1
        return self._regs.get(self._offset(addr), 0)

    def handle_store(self, addr: int, value: int, source: str) -> None:
        self.store_count += 1
        offset = self._offset(addr)
        self._regs[offset] = value
        if self.on_store is not None:
            self.on_store(offset, value, source)

    def set_reg(self, offset_words: int, value: int) -> None:
        """Device-side update of a readable register (no doorbell)."""
        self._regs[offset_words] = value

    def get_reg(self, offset_words: int) -> int:
        return self._regs.get(offset_words, 0)

    def reg_addr(self, offset_words: int) -> int:
        """Byte address of a register, for guests to load/store."""
        return self.region.word(offset_words)

    # ------------------------------------------------------------------
    def _offset(self, addr: int) -> int:
        if not self.contains(addr):
            raise MemoryError_(f"addr {addr:#x} outside MMIO {self.name!r}")
        return (addr - self.region.base) // WORD_BYTES
