"""A TLB model, for the translation half of wakeup thrashing.

Section 4 consistently pairs the two stores of non-register state:
"Misses in caches and TLBs can lead to significant performance loss and
even thrashing as numerous hardware threads start and stop", and the
prefetch mitigation covers "caches of all types", translations
included ("the most critical instructions/data/translations").

The model is a set-associative LRU translation cache over fixed-size
pages with a fixed walk cost on miss, plus the same ``warm``/``pin``
hooks as :class:`~repro.mem.cache.Cache` so E13-style policies apply.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.errors import ConfigError

PAGE_BYTES = 4096


class Tlb:
    """Set-associative LRU TLB."""

    def __init__(self, name: str = "dtlb", entries: int = 64, ways: int = 4,
                 page_bytes: int = PAGE_BYTES,
                 hit_cycles: int = 1, walk_cycles: int = 100):
        if entries <= 0 or ways <= 0 or entries % ways != 0:
            raise ConfigError(
                f"{name!r}: {entries} entries not divisible into {ways} ways")
        if page_bytes <= 0:
            raise ConfigError("page size must be positive")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.page_bytes = page_bytes
        self.sets = entries // ways
        self.hit_cycles = hit_cycles
        self.walk_cycles = walk_cycles
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self.sets)]
        self._pinned: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0

    # ------------------------------------------------------------------
    def translate(self, addr: int) -> int:
        """Translate ``addr``; returns cycles (hit or hit+walk)."""
        page = addr // self.page_bytes
        index = page % self.sets
        ways = self._sets[index]
        if page in ways:
            self.hits += 1
            ways.move_to_end(page)
            return self.hit_cycles
        self.misses += 1
        self._fill(index, page)
        return self.hit_cycles + self.walk_cycles

    def contains(self, addr: int) -> bool:
        page = addr // self.page_bytes
        return page in self._sets[page % self.sets]

    def warm(self, base: int, nbytes: int) -> None:
        """Preload translations for an address range (prefetch-on-wake)."""
        page0 = base // self.page_bytes
        page1 = (base + max(nbytes - 1, 0)) // self.page_bytes
        for page in range(page0, page1 + 1):
            index = page % self.sets
            ways = self._sets[index]
            if page in ways:
                ways.move_to_end(page)
            else:
                self._fill(index, page)

    def pin(self, base: int, nbytes: int) -> None:
        """Pin translations (fine-grain partitioning for the TLB)."""
        page0 = base // self.page_bytes
        page1 = (base + max(nbytes - 1, 0)) // self.page_bytes
        for page in range(page0, page1 + 1):
            self._pinned.add(page)
        self.warm(base, nbytes)

    def unpin(self, base: int, nbytes: int) -> None:
        page0 = base // self.page_bytes
        page1 = (base + max(nbytes - 1, 0)) // self.page_bytes
        for page in range(page0, page1 + 1):
            self._pinned.discard(page)

    def flush(self) -> None:
        """Drop all unpinned translations (a context-switch TLB flush)."""
        for ways in self._sets:
            for page in [p for p in ways if p not in self._pinned]:
                del ways[page]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def walk_working_set(self, base: int, nbytes: int,
                         stride: int = 64) -> int:
        """Translate a working set sequentially; returns total cycles."""
        total = 0
        for addr in range(base, base + nbytes, stride):
            total += self.translate(addr)
        return total

    # ------------------------------------------------------------------
    def _fill(self, index: int, page: int) -> None:
        ways = self._sets[index]
        if len(ways) >= self.ways:
            victim = next((p for p in ways if p not in self._pinned), None)
            if victim is None:
                self.bypasses += 1
                return
            del ways[victim]
            self.evictions += 1
        ways[page] = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Tlb {self.name} {self.entries}e hit_rate={self.hit_rate:.2f}>"
