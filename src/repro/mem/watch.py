"""The write-watch bus: generalized monitor/mwait substrate.

Paper, Section 3.1: "these instructions monitor any write (including
DMA) to any address, may be used from any privilege level ... Unlike
x86, one can monitor uncachable addresses such as device memory or
memory-mapped I/O registers."

Watches are line-granular (default 64 B), like real MONITOR, so a write
to any byte of the watched line triggers the waiter -- the aliasing this
implies is intentional and covered by tests.

Coherence is pluggable: with :attr:`WatchBus.coherence` left at ``None``
(the default everywhere) the bus is the seed's flat, free broadcast --
byte-identical behavior. Attaching a
:class:`~repro.coherence.directory.DirectoryModel` routes arms, disarms,
and watched-line writes through an MSI-style directory that prices them
and forwards wakeups with per-sharer delays.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Optional, Set

from repro.sim.process import Signal

LINE_BYTES = 64


class Watch:
    """One armed monitor: a set of watched lines and a wakeup signal.

    A single watch may span several addresses (the paper: "A hardware
    thread can monitor multiple memory locations"); any write to any of
    them fires the signal once.
    """

    __slots__ = ("bus", "owner", "lines", "signal", "armed", "trigger_count",
                 "last_trigger")

    def __init__(self, bus: "WatchBus", owner: Any = None):
        self.bus = bus
        self.owner = owner
        self.lines: Set[int] = set()
        self.signal = Signal(f"watch:{owner}")
        self.armed = True
        self.trigger_count = 0
        self.last_trigger: Optional[Dict[str, Any]] = None

    def add_address(self, addr: int) -> int:
        """Watch the cache line containing ``addr``.

        Returns the directory arm cost in cycles (0 with no coherence
        model attached, or when the line was already watched).
        """
        line = addr // self.bus.line_bytes
        if line not in self.lines:
            self.lines.add(line)
            self.bus._line_watches[line][self] = None
            coherence = self.bus.coherence
            if coherence is not None:
                return coherence.on_arm(line, self)
        return 0

    def covers(self, addr: int) -> bool:
        return (addr // self.bus.line_bytes) in self.lines

    def cancel(self) -> int:
        """Disarm and deregister. Idempotent.

        Returns the directory disarm cost in cycles (0 with no
        coherence model attached).
        """
        if not self.armed:
            return 0
        self.armed = False
        coherence = self.bus.coherence
        cycles = 0
        for line in self.lines:
            watchers = self.bus._line_watches.get(line)
            if watchers is not None:
                watchers.pop(self, None)
            if coherence is not None:
                cycles += coherence.on_disarm(line, self)
        self.lines.clear()
        return cycles

    def _trigger(self, addr: int, value: int, source: str) -> None:
        self.trigger_count += 1
        self.last_trigger = {"addr": addr, "value": value, "source": source}
        self.signal.fire(self.last_trigger)


class WatchBus:
    """Routes every memory write to the watches covering its line."""

    def __init__(self, line_bytes: int = LINE_BYTES):
        self.line_bytes = line_bytes
        # line -> insertion-ordered set of watches. A dict keyed by the
        # watch gives O(1) cancel while keeping the flat bus's exact
        # arm-order iteration (a swap-remove list would reorder
        # wakeups and break byte-identity).
        self._line_watches: Dict[int, Dict[Watch, None]] = defaultdict(dict)
        self.total_notifications = 0
        self.total_triggers = 0
        #: pluggable coherence model (None = flat free bus, the seed
        #: behavior; see repro.coherence.directory.DirectoryModel)
        self.coherence = None

    def watch(self, addresses, owner: Any = None) -> Watch:
        """Arm a watch over one address or an iterable of addresses."""
        watch = Watch(self, owner)
        if isinstance(addresses, int):
            addresses = [addresses]
        for addr in addresses:
            watch.add_address(addr)
        return watch

    def notify(self, addr: int, value: int, source: str = "cpu") -> int:
        """A write happened; trigger covering watches. Returns count.

        With a coherence model attached the count is the number of
        wakeup *forwards initiated* (delivery may be deferred by the
        directory's forward latency); the flat path fires synchronously.
        """
        self.total_notifications += 1
        line = addr // self.line_bytes
        coherence = self.coherence
        if coherence is not None:
            return coherence.on_write(self, line, addr, value, source)
        watchers = self._line_watches.get(line)
        if not watchers:
            return 0
        fired = 0
        # copy: triggering may cancel/re-arm watches
        for watch in list(watchers):
            if watch.armed:
                watch._trigger(addr, value, source)
                fired += 1
        self.total_triggers += fired
        return fired

    def subscribe(self, addr: int, callback, owner: Any = None):
        """Persistently invoke ``callback(info)`` on every write to the
        line holding ``addr``. Returns a zero-argument cancel function.

        Unlike a raw :class:`Watch` (whose signal waiters are one-shot,
        matching mwait semantics), a subscription re-arms itself --
        convenience for device drivers and experiment instrumentation.
        """
        state = {"active": True, "watch": None}

        def arm() -> None:
            watch = self.watch(addr, owner=owner)
            state["watch"] = watch

            def on_write(info: dict) -> None:
                watch.cancel()
                if not state["active"]:
                    return
                arm()
                callback(info)

            watch.signal.add_waiter(on_write)

        def cancel() -> None:
            state["active"] = False
            if state["watch"] is not None:
                state["watch"].cancel()

        arm()
        return cancel

    def watchers_on(self, addr: int) -> int:
        """How many armed watches cover ``addr`` (diagnostics)."""
        line = addr // self.line_bytes
        return sum(1 for w in self._line_watches.get(line, ()) if w.armed)

    def __repr__(self) -> str:  # pragma: no cover
        lines = sum(1 for ws in self._line_watches.values() if ws)
        return f"<WatchBus lines={lines} notes={self.total_notifications}>"
