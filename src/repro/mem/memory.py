"""Word-granular flat memory.

All data is stored as 64-bit words at 8-byte-aligned byte addresses.
Every store is routed through the :class:`~repro.mem.watch.WatchBus`
(the generalized-monitor substrate) and, when the address falls in an
MMIO window, through the owning device's register handler.

A bump allocator (:meth:`Memory.alloc`) hands out named regions so
experiments can lay out rings, descriptor tables, and mailboxes without
address bookkeeping. In ``strict`` mode, touching memory outside any
region raises a page-fault :class:`~repro.errors.GuestFault`, which the
hardware model converts into an exception descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import GuestFault, MemoryError_
from repro.mem.watch import WatchBus

WORD_BYTES = 8


@dataclass(frozen=True)
class Region:
    """A named allocated address range [base, base+size)."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def word(self, index: int) -> int:
        """Byte address of the index-th word in the region."""
        addr = self.base + index * WORD_BYTES
        if addr >= self.end:
            raise MemoryError_(
                f"word {index} out of region {self.name!r} ({self.size} bytes)")
        return addr


class Memory:
    """Sparse 64-bit-word memory with watch notification.

    ``strict=True`` turns out-of-region accesses into page faults; the
    default is permissive (all of memory exists, zero-filled), which is
    what most experiments want.
    """

    def __init__(self, size_bytes: int = 1 << 32, strict: bool = False,
                 watch_bus: Optional[WatchBus] = None):
        self.size_bytes = size_bytes
        self.strict = strict
        self.watch_bus = watch_bus if watch_bus is not None else WatchBus()
        self._words: Dict[int, int] = {}
        self._regions: List[Region] = []
        self._mmio: List["object"] = []  # MmioRegion, typed loosely to avoid cycle
        self._alloc_cursor = 0x1000  # keep page 0 unmapped like a real OS
        self.load_count = 0
        self.store_count = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, name: str, size_bytes: int, align: int = 64) -> Region:
        """Allocate a named region (bump allocator, line-aligned)."""
        if size_bytes <= 0:
            raise MemoryError_(f"allocation size must be positive, got {size_bytes}")
        base = (self._alloc_cursor + align - 1) // align * align
        if base + size_bytes > self.size_bytes:
            raise MemoryError_(
                f"out of simulated memory allocating {size_bytes} for {name!r}")
        region = Region(name, base, size_bytes)
        self._regions.append(region)
        self._alloc_cursor = base + size_bytes
        return region

    def region(self, name: str) -> Region:
        for reg in self._regions:
            if reg.name == name:
                return reg
        raise MemoryError_(f"no region named {name!r}")

    def attach_mmio(self, mmio: "object") -> None:
        """Register an MMIO window (created via repro.mem.mmio)."""
        self._mmio.append(mmio)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def load(self, addr: int) -> int:
        """Read the 64-bit word at ``addr`` (8-byte aligned)."""
        self._check(addr)
        self.load_count += 1
        mmio = self._find_mmio(addr)
        if mmio is not None:
            return mmio.handle_load(addr)
        return self._words.get(addr, 0)

    def store(self, addr: int, value: int, source: str = "cpu") -> None:
        """Write the 64-bit word at ``addr`` and notify watchers.

        ``source`` labels who wrote ('cpu', 'dma:nic0', 'msix', ...) --
        the point of the paper's generalized monitor is that all of these
        wake waiters identically.
        """
        self._check(addr)
        self.store_count += 1
        value = int(value) & 0xFFFF_FFFF_FFFF_FFFF
        mmio = self._find_mmio(addr)
        if mmio is not None:
            mmio.handle_store(addr, value, source)
        else:
            self._words[addr] = value
        self.watch_bus.notify(addr, value, source)

    def fetch_add(self, addr: int, delta: int = 1, source: str = "cpu") -> int:
        """Atomic read-modify-write; returns the *new* value.

        Used for event counters (e.g. the APIC timer "can increment a
        counter every time a timer interrupt is triggered").
        """
        new = (self._words.get(addr, 0) + delta) & 0xFFFF_FFFF_FFFF_FFFF
        self.store(addr, new, source)
        return new

    def load_words(self, addr: int, count: int) -> List[int]:
        return [self.load(addr + i * WORD_BYTES) for i in range(count)]

    def store_words(self, addr: int, values, source: str = "cpu") -> None:
        for i, value in enumerate(values):
            self.store(addr + i * WORD_BYTES, value, source)

    # ------------------------------------------------------------------
    def _check(self, addr: int) -> None:
        if addr % WORD_BYTES != 0:
            raise GuestFault("alignment-fault", f"addr {addr:#x}", addr)
        if not 0 <= addr < self.size_bytes:
            raise GuestFault("page-fault", f"addr {addr:#x} out of memory", addr)
        if self.strict and not any(r.contains(addr) for r in self._regions):
            raise GuestFault("page-fault", f"addr {addr:#x} unmapped", addr)

    def _find_mmio(self, addr: int):
        for mmio in self._mmio:
            if mmio.contains(addr):
                return mmio
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Memory {len(self._words)} words, {len(self._regions)} regions,"
                f" strict={self.strict}>")
