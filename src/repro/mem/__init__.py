"""Simulated memory system.

The load-bearing piece is the :class:`~repro.mem.watch.WatchBus`: the
paper generalizes x86 ``monitor``/``mwait`` so that *any* write -- CPU
store, DMA from a device, or a translated legacy interrupt (MSI-X) --
to a watched address wakes the waiting hardware thread. Every mutation
of simulated memory therefore flows through :meth:`Memory.store`, which
notifies the bus; device models never poke memory behind its back.

- :mod:`repro.mem.memory` -- word-granular flat memory with a bump
  allocator and optional strict (page-fault) mode.
- :mod:`repro.mem.watch` -- the write-watch bus (line granularity).
- :mod:`repro.mem.cache` -- set-associative LRU cache hierarchy used for
  context-switch pollution modeling.
- :mod:`repro.mem.dma` -- DMA engine with bandwidth/latency modeling.
- :mod:`repro.mem.mmio` -- memory-mapped device registers (doorbells).
- :mod:`repro.mem.tlb` -- TLB with the same warm/pin hooks as the
  caches, for the translation half of wakeup thrashing.
"""

from repro.mem.cache import Cache, CacheHierarchy
from repro.mem.dma import DmaEngine
from repro.mem.memory import Memory, Region
from repro.mem.mmio import MmioRegion
from repro.mem.tlb import Tlb
from repro.mem.watch import Watch, WatchBus

__all__ = [
    "Cache",
    "CacheHierarchy",
    "DmaEngine",
    "Memory",
    "MmioRegion",
    "Region",
    "Tlb",
    "Watch",
    "WatchBus",
]
