"""DMA engine: device-initiated memory writes with bandwidth modeling.

Transfers flow through :meth:`Memory.store`, so any monitor armed on the
destination line fires exactly as the paper requires ("monitoring
addresses updated by a DMA engine when a new packet arrives").
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ConfigError
from repro.mem.memory import WORD_BYTES, Memory


class DmaEngine:
    """Models DMA latency + bandwidth and performs the writes.

    ``latency_cycles`` is the fixed per-transfer setup cost (PCIe/CXL
    traversal); ``bytes_per_cycle`` the streaming bandwidth once started.
    """

    def __init__(self, engine, memory: Memory, name: str = "dma",
                 latency_cycles: int = 300, bytes_per_cycle: int = 32):
        if bytes_per_cycle <= 0:
            raise ConfigError("bytes_per_cycle must be positive")
        self.engine = engine
        self.memory = memory
        self.name = name
        self.latency_cycles = latency_cycles
        self.bytes_per_cycle = bytes_per_cycle
        self.transfers = 0
        self.bytes_moved = 0

    # ------------------------------------------------------------------
    def transfer_cycles(self, nbytes: int) -> int:
        """Completion time for an ``nbytes`` transfer."""
        return self.latency_cycles + (nbytes + self.bytes_per_cycle - 1) // self.bytes_per_cycle

    def write(self, dest_addr: int, words: List[int],
              on_complete: Optional[Callable[[], None]] = None,
              source: Optional[str] = None) -> int:
        """Schedule a DMA write of ``words`` to ``dest_addr``.

        The data lands (and watchers fire) when the modeled transfer
        finishes. Returns the completion time.
        """
        nbytes = len(words) * WORD_BYTES
        done_at = self.engine.now + self.transfer_cycles(nbytes)
        tag = source or f"dma:{self.name}"

        def land() -> None:
            self.memory.store_words(dest_addr, words, source=tag)
            self.transfers += 1
            self.bytes_moved += nbytes
            if on_complete is not None:
                on_complete()

        self.engine.at(done_at, land)
        return done_at

    def write_word(self, dest_addr: int, value: int,
                   on_complete: Optional[Callable[[], None]] = None) -> int:
        """Single-word DMA write (doorbell/tail-pointer update)."""
        return self.write(dest_addr, [value], on_complete)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DmaEngine {self.name} transfers={self.transfers}>"
