"""Set-associative LRU cache hierarchy.

Used for the *pollution* side of context-switch cost: the paper's
Section 1 complains that frequent switches "lead to poor caching
behavior" and Section 4 argues thread state plus working sets must stay
on-chip. The model is a conventional set-associative LRU simulator with
per-level hit latencies taken from :class:`~repro.arch.costs.CostModel`.

This is an access-timing model only -- data values live in
:class:`~repro.mem.memory.Memory`; the cache tracks presence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.errors import ConfigError


class Cache:
    """One cache level (set-associative, LRU, allocate-on-miss)."""

    def __init__(self, name: str, size_bytes: int, ways: int = 8,
                 line_bytes: int = 64, hit_cycles: int = 4,
                 parent: Optional["Cache"] = None,
                 miss_cycles: int = 250):
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ConfigError(f"invalid cache geometry for {name!r}")
        lines = size_bytes // line_bytes
        if lines % ways != 0:
            raise ConfigError(
                f"{name!r}: {lines} lines not divisible into {ways} ways")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.sets = lines // ways
        self.hit_cycles = hit_cycles
        self.parent = parent
        self.miss_cycles = miss_cycles  # cost beyond the last level
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.sets)]
        self._pinned: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0

    # ------------------------------------------------------------------
    def access(self, addr: int) -> int:
        """Touch ``addr``; returns total load-to-use cycles."""
        line = addr // self.line_bytes
        index = line % self.sets
        ways = self._sets[index]
        if line in ways:
            self.hits += 1
            ways.move_to_end(line)
            return self.hit_cycles
        self.misses += 1
        below = self.parent.access(addr) if self.parent else self.miss_cycles
        self._fill(index, line)
        return self.hit_cycles + below

    def contains(self, addr: int) -> bool:
        line = addr // self.line_bytes
        return line in self._sets[line % self.sets]

    def warm(self, base: int, nbytes: int) -> None:
        """Prefetch an address range without charging latency.

        Models the paper's "prefetching techniques that warm up caches
        of all types as soon as threads become runnable".
        """
        line0 = base // self.line_bytes
        line1 = (base + max(nbytes - 1, 0)) // self.line_bytes
        for line in range(line0, line1 + 1):
            index = line % self.sets
            ways = self._sets[index]
            if line in ways:
                ways.move_to_end(line)
            else:
                self._fill(index, line)
        if self.parent is not None:
            self.parent.warm(base, nbytes)

    def pin(self, base: int, nbytes: int) -> None:
        """Pin an address range: resident and never evicted.

        Models Section 4: "we can pin the most critical
        instructions/data/translations (few KBytes) for
        performance-sensitive threads in caches, using fine-grain cache
        partitioning techniques that allow hundreds of small partitions
        without loss of associativity [66]". A set whose ways are all
        pinned bypasses new fills rather than losing pinned lines.
        """
        line0 = base // self.line_bytes
        line1 = (base + max(nbytes - 1, 0)) // self.line_bytes
        for line in range(line0, line1 + 1):
            self._pinned.add(line)
        self.warm(base, nbytes)

    def unpin(self, base: int, nbytes: int) -> None:
        """Release a pinned range (lines stay cached, become evictable)."""
        line0 = base // self.line_bytes
        line1 = (base + max(nbytes - 1, 0)) // self.line_bytes
        for line in range(line0, line1 + 1):
            self._pinned.discard(line)

    def flush(self) -> None:
        """Drop every line except pinned ones (they are unevictable)."""
        for ways in self._sets:
            for line in [l for l in ways if l not in self._pinned]:
                del ways[line]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def _fill(self, index: int, line: int) -> None:
        ways = self._sets[index]
        if len(ways) >= self.ways:
            victim = next((l for l in ways if l not in self._pinned), None)
            if victim is None:
                self.bypasses += 1  # set fully pinned: do not allocate
                return
            del ways[victim]
            self.evictions += 1
        ways[line] = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Cache {self.name} {self.size_bytes >> 10}KiB hit_rate={self.hit_rate:.2f}>"


class CacheHierarchy:
    """A conventional L1/L2/L3 stack built from the cost model."""

    def __init__(self, costs=None, l1_kib: int = 32, l2_kib: int = 512,
                 l3_kib: int = 8192, line_bytes: int = 64):
        if costs is None:
            from repro.arch.costs import CostModel
            costs = CostModel()
        self.l3 = Cache("L3", l3_kib * 1024, ways=16, line_bytes=line_bytes,
                        hit_cycles=costs.l3_hit_cycles, parent=None,
                        miss_cycles=costs.dram_cycles)
        self.l2 = Cache("L2", l2_kib * 1024, ways=8, line_bytes=line_bytes,
                        hit_cycles=costs.l2_hit_cycles, parent=self.l3)
        self.l1 = Cache("L1", l1_kib * 1024, ways=8, line_bytes=line_bytes,
                        hit_cycles=costs.l1_hit_cycles, parent=self.l2)

    def access(self, addr: int) -> int:
        """Load-to-use latency through the hierarchy."""
        return self.l1.access(addr)

    def warm(self, base: int, nbytes: int) -> None:
        self.l1.warm(base, nbytes)

    def pin(self, base: int, nbytes: int) -> None:
        """Pin a critical range at every level (Section 4 partitioning)."""
        for cache in (self.l1, self.l2, self.l3):
            cache.pin(base, nbytes)

    def unpin(self, base: int, nbytes: int) -> None:
        for cache in (self.l1, self.l2, self.l3):
            cache.unpin(base, nbytes)

    def flush(self) -> None:
        for cache in (self.l1, self.l2, self.l3):
            cache.flush()

    def stats(self) -> Dict[str, Dict[str, float]]:
        return {
            cache.name: {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "hit_rate": cache.hit_rate,
            }
            for cache in (self.l1, self.l2, self.l3)
        }

    def walk_working_set(self, base: int, nbytes: int, stride: int = 64) -> int:
        """Touch a working set sequentially; returns total cycles.

        The basic tool for measuring pollution: run a working set, switch
        to another, return, and compare cycles.
        """
        total = 0
        for addr in range(base, base + nbytes, stride):
            total += self.access(addr)
        return total
