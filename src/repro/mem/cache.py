"""Set-associative LRU cache hierarchy.

Used for the *pollution* side of context-switch cost: the paper's
Section 1 complains that frequent switches "lead to poor caching
behavior" and Section 4 argues thread state plus working sets must stay
on-chip. The model is a conventional set-associative LRU simulator with
per-level hit latencies taken from :class:`~repro.arch.costs.CostModel`.

This is an access-timing model only -- data values live in
:class:`~repro.mem.memory.Memory`; the cache tracks presence.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigError


class Cache:
    """One cache level (set-associative, LRU, allocate-on-miss)."""

    def __init__(self, name: str, size_bytes: int, ways: int = 8,
                 line_bytes: int = 64, hit_cycles: int = 4,
                 parent: Optional["Cache"] = None,
                 miss_cycles: int = 250):
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ConfigError(f"invalid cache geometry for {name!r}")
        lines = size_bytes // line_bytes
        if lines % ways != 0:
            raise ConfigError(
                f"{name!r}: {lines} lines not divisible into {ways} ways")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.sets = lines // ways
        self.hit_cycles = hit_cycles
        self.parent = parent
        self.miss_cycles = miss_cycles  # cost beyond the last level
        # plain dicts in LRU order: insertion order is recency order, a
        # hit re-inserts, and the first key is always the LRU victim
        self._sets: List[dict] = [{} for _ in range(self.sets)]
        self._pinned: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0

    # ------------------------------------------------------------------
    def access(self, addr: int) -> int:
        """Touch ``addr``; returns total load-to-use cycles."""
        line = addr // self.line_bytes
        ways = self._sets[line % self.sets]
        if line in ways:
            self.hits += 1
            del ways[line]
            ways[line] = True
            return self.hit_cycles
        self.misses += 1
        parent = self.parent
        below = parent.access(addr) if parent is not None else self.miss_cycles
        # fill, inlined from _fill: this runs once per miss at every level
        if len(ways) >= self.ways:
            pinned = self._pinned
            if not pinned or pinned.isdisjoint(ways):
                victim = next(iter(ways))
            else:
                victim = next((l for l in ways if l not in pinned), None)
                if victim is None:
                    self.bypasses += 1  # set fully pinned: do not allocate
                    return self.hit_cycles + below
            del ways[victim]
            self.evictions += 1
        ways[line] = True
        return self.hit_cycles + below

    def contains(self, addr: int) -> bool:
        line = addr // self.line_bytes
        return line in self._sets[line % self.sets]

    def warm(self, base: int, nbytes: int) -> None:
        """Prefetch an address range without charging latency.

        Models the paper's "prefetching techniques that warm up caches
        of all types as soon as threads become runnable".
        """
        line0 = base // self.line_bytes
        line1 = (base + max(nbytes - 1, 0)) // self.line_bytes
        for line in range(line0, line1 + 1):
            index = line % self.sets
            ways = self._sets[index]
            if line in ways:
                del ways[line]
                ways[line] = True
            else:
                self._fill(index, line)
        if self.parent is not None:
            self.parent.warm(base, nbytes)

    def pin(self, base: int, nbytes: int) -> None:
        """Pin an address range: resident and never evicted.

        Models Section 4: "we can pin the most critical
        instructions/data/translations (few KBytes) for
        performance-sensitive threads in caches, using fine-grain cache
        partitioning techniques that allow hundreds of small partitions
        without loss of associativity [66]". A set whose ways are all
        pinned bypasses new fills rather than losing pinned lines.
        """
        line0 = base // self.line_bytes
        line1 = (base + max(nbytes - 1, 0)) // self.line_bytes
        for line in range(line0, line1 + 1):
            self._pinned.add(line)
        self.warm(base, nbytes)

    def unpin(self, base: int, nbytes: int) -> None:
        """Release a pinned range (lines stay cached, become evictable)."""
        line0 = base // self.line_bytes
        line1 = (base + max(nbytes - 1, 0)) // self.line_bytes
        for line in range(line0, line1 + 1):
            self._pinned.discard(line)

    def flush(self) -> None:
        """Drop every line except pinned ones (they are unevictable)."""
        for ways in self._sets:
            for line in [l for l in ways if l not in self._pinned]:
                del ways[line]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def _fill(self, index: int, line: int) -> None:
        ways = self._sets[index]
        if len(ways) >= self.ways:
            pinned = self._pinned
            if not pinned or pinned.isdisjoint(ways):
                victim = next(iter(ways))
            else:
                victim = next((l for l in ways if l not in pinned), None)
                if victim is None:
                    self.bypasses += 1  # set fully pinned: do not allocate
                    return
            del ways[victim]
            self.evictions += 1
        ways[line] = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Cache {self.name} {self.size_bytes >> 10}KiB hit_rate={self.hit_rate:.2f}>"


class CacheHierarchy:
    """A conventional L1/L2/L3 stack built from the cost model."""

    def __init__(self, costs=None, l1_kib: int = 32, l2_kib: int = 512,
                 l3_kib: int = 8192, line_bytes: int = 64):
        if costs is None:
            from repro.arch.costs import CostModel
            costs = CostModel()
        # observability: harvested at snapshot time only; the access hot
        # loops are untouched
        import repro.obs as obs
        session = obs.active()
        if session is not None:
            session.register_source("mem.cache", self.fill_metrics)
        self.l3 = Cache("L3", l3_kib * 1024, ways=16, line_bytes=line_bytes,
                        hit_cycles=costs.l3_hit_cycles, parent=None,
                        miss_cycles=costs.dram_cycles)
        self.l2 = Cache("L2", l2_kib * 1024, ways=8, line_bytes=line_bytes,
                        hit_cycles=costs.l2_hit_cycles, parent=self.l3)
        self.l1 = Cache("L1", l1_kib * 1024, ways=8, line_bytes=line_bytes,
                        hit_cycles=costs.l1_hit_cycles, parent=self.l2)

    def access(self, addr: int) -> int:
        """Load-to-use latency through the hierarchy."""
        return self.l1.access(addr)

    def warm(self, base: int, nbytes: int) -> None:
        self.l1.warm(base, nbytes)

    def pin(self, base: int, nbytes: int) -> None:
        """Pin a critical range at every level (Section 4 partitioning)."""
        for cache in (self.l1, self.l2, self.l3):
            cache.pin(base, nbytes)

    def unpin(self, base: int, nbytes: int) -> None:
        for cache in (self.l1, self.l2, self.l3):
            cache.unpin(base, nbytes)

    def flush(self) -> None:
        for cache in (self.l1, self.l2, self.l3):
            cache.flush()

    def stats(self) -> Dict[str, Dict[str, float]]:
        return {
            cache.name: {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "hit_rate": cache.hit_rate,
            }
            for cache in (self.l1, self.l2, self.l3)
        }

    def fill_metrics(self, registry, prefix: str) -> None:
        """Snapshot-time metric harvest (see repro.obs.snapshot)."""
        for cache in (self.l1, self.l2, self.l3):
            level = cache.name.lower()
            registry.inc(f"{prefix}.{level}.hits", cache.hits)
            registry.inc(f"{prefix}.{level}.misses", cache.misses)
            registry.inc(f"{prefix}.{level}.evictions", cache.evictions)
            registry.inc(f"{prefix}.{level}.bypasses", cache.bypasses)
            registry.set(f"{prefix}.{level}.hit_rate",
                         round(cache.hit_rate, 6))

    def walk_working_set(self, base: int, nbytes: int, stride: int = 64) -> int:
        """Touch a working set sequentially; returns total cycles.

        The basic tool for measuring pollution: run a working set, switch
        to another, return, and compare cycles.

        This is the pollution experiments' inner loop (millions of
        accesses per sweep cell), so the three levels are walked in one
        flat pass with per-level state in locals instead of recursive
        :meth:`Cache.access` calls -- same lookups, same fills, same
        counters, a fraction of the interpreter overhead.
        """
        l1, l2, l3 = self.l1, self.l2, self.l3
        line_bytes = l1.line_bytes
        if l2.line_bytes != line_bytes or l3.line_bytes != line_bytes:
            # unequal line sizes can't share one line index; generic path
            total = 0
            for addr in range(base, base + nbytes, stride):
                total += l1.access(addr)
            return total
        levels = []
        for cache in (l1, l2, l3):
            levels.append((cache._sets, cache.sets, cache.ways,
                           cache._pinned, cache.hit_cycles))
        dram = l3.miss_cycles
        hits = [0, 0, 0]
        misses = [0, 0, 0]
        evictions = [0, 0, 0]
        bypasses = [0, 0, 0]
        total = 0
        for addr in range(base, base + nbytes, stride):
            line = addr // line_bytes
            for k in (0, 1, 2):
                sets, nsets, nways, pinned, hit_cycles = levels[k]
                ways = sets[line % nsets]
                total += hit_cycles
                if line in ways:
                    hits[k] += 1
                    del ways[line]
                    ways[line] = True
                    break
                misses[k] += 1
                if len(ways) >= nways:
                    if not pinned or pinned.isdisjoint(ways):
                        del ways[next(iter(ways))]
                        evictions[k] += 1
                        ways[line] = True
                    else:
                        victim = next(
                            (l for l in ways if l not in pinned), None)
                        if victim is None:
                            bypasses[k] += 1  # fully pinned set
                        else:
                            del ways[victim]
                            evictions[k] += 1
                            ways[line] = True
                else:
                    ways[line] = True
            else:
                total += dram  # missed every level
        for k, cache in enumerate((l1, l2, l3)):
            cache.hits += hits[k]
            cache.misses += misses[k]
            cache.evictions += evictions[k]
            cache.bypasses += bypasses[k]
        return total
