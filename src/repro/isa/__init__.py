"""Instruction set: a small RISC-like base ISA plus the paper's extensions.

Base instructions cover ALU ops, loads/stores, branches, and two
modeling pseudo-ops (``work``/``fwork``, which consume cycles like a
computation of known length). The extensions are exactly the Section 3.1
proposal:

=====================  ====================================================
``monitor <addr-reg>``  arm a watch on an address (accumulates; a thread
                        may monitor several locations)
``mwait``               block the ptid until a watched write occurs
``start <vtid>``        enable the ptid mapped to vtid
``stop <vtid>``         disable the ptid mapped to vtid
``rpull v, l, rem``     local-reg <- remote ptid's register
``rpush v, rem, l``     remote ptid's register <- local-reg
``invtid v, rv``        invalidate a TDT-cache entry after a table update
=====================  ====================================================

plus ``trap``/``privop``/``csrr``/``csrw``/``setkey``/``halt`` which
round out the exception and security model. Instructions are kept as
structured objects; binary encoding is out of scope for a behavioral
model (documented in DESIGN.md).
"""

from repro.isa.instructions import (
    Imm,
    Instruction,
    Label,
    OPS,
    OpSpec,
    Reg,
    RegName,
)
from repro.isa.assembler import assemble
from repro.isa.program import Program

__all__ = [
    "Imm",
    "Instruction",
    "Label",
    "OPS",
    "OpSpec",
    "Program",
    "Reg",
    "RegName",
    "assemble",
]
