"""Two-pass text assembler.

Syntax, one instruction per line::

    ; comment (also '#')
    loop:               ; labels end with ':'
        movi r1, 10
        addi r1, r1, -1
        bne  r1, r0, loop
        monitor r2
        mwait
        rpull 3, r1, pc  ; vtid 3, local r1, remote register 'pc'
        halt

Operand parsing is driven by the opcode's spec: ``R`` operands must be
register tokens, ``RI`` accepts either, ``N`` is a symbolic register
name, ``L`` a label or absolute index. Immediates may be decimal,
negative, or ``0x`` hex, and may reference ``symbols`` passed by the
caller (e.g. buffer addresses allocated at build time)::

    assemble("movi r1, RX_TAIL", symbols={"RX_TAIL": 0x5000})
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import IsaError
from repro.isa.instructions import Imm, Instruction, Label, OPS, Reg, RegName
from repro.isa.program import Program

_REGISTER_RE = re.compile(r"^(r\d+|v\d+|pc|flags|edp|tdtr|priv)$")
_LABEL_DEF_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")


def assemble(source: str, name: str = "program",
             symbols: Optional[Dict[str, int]] = None) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    symbols = symbols or {}
    lines = _clean(source)

    # pass 1: label indices
    labels: Dict[str, int] = {}
    instruction_lines: List[Tuple[int, str]] = []
    for line_no, text in lines:
        match = _LABEL_DEF_RE.match(text)
        if match:
            label = match.group(1)
            if label in labels:
                raise IsaError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = len(instruction_lines)
        else:
            instruction_lines.append((line_no, text))

    # pass 2: instructions
    instructions: List[Instruction] = []
    for line_no, text in instruction_lines:
        instructions.append(_parse_instruction(line_no, text, labels, symbols))
    return Program(instructions, labels, name=name)


# ----------------------------------------------------------------------
def _clean(source: str) -> List[Tuple[int, str]]:
    out = []
    for line_no, raw in enumerate(source.splitlines(), start=1):
        text = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        if text:
            out.append((line_no, text))
    return out


def _parse_instruction(line_no: int, text: str, labels: Dict[str, int],
                       symbols: Dict[str, int]) -> Instruction:
    parts = text.split(None, 1)
    op = parts[0].lower()
    # 'and'/'or' are Python keywords; specs use trailing underscore
    if op in ("and", "or"):
        op += "_"
    spec = OPS.get(op)
    if spec is None:
        raise IsaError(f"line {line_no}: unknown opcode {parts[0]!r}")
    tokens = [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []
    if len(tokens) != len(spec.operands):
        raise IsaError(
            f"line {line_no}: {op} expects {len(spec.operands)} operands, "
            f"got {len(tokens)}")
    operands = []
    for token, kind in zip(tokens, spec.operands):
        operands.append(_parse_operand(line_no, op, token, kind, labels, symbols))
    return Instruction(op, tuple(operands))


def _parse_operand(line_no: int, op: str, token: str, kind: str,
                   labels: Dict[str, int], symbols: Dict[str, int]):
    if not token:
        raise IsaError(f"line {line_no}: empty operand in {op}")
    if kind == "R":
        if _REGISTER_RE.match(token):
            return Reg(token)
        raise IsaError(f"line {line_no}: {op} needs a register, got {token!r}")
    if kind == "N":
        if _REGISTER_RE.match(token):
            return RegName(token)
        raise IsaError(f"line {line_no}: {op} needs a register name, got {token!r}")
    if kind == "I":
        value = _try_int(token, symbols)
        if value is None:
            raise IsaError(f"line {line_no}: {op} needs an immediate, got {token!r}")
        return Imm(value)
    if kind == "RI":
        if _REGISTER_RE.match(token):
            return Reg(token)
        value = _try_int(token, symbols)
        if value is None:
            raise IsaError(
                f"line {line_no}: {op} needs a register or immediate, got {token!r}")
        return Imm(value)
    if kind == "L":
        if token in labels:
            return Label(token)
        value = _try_int(token, symbols)
        if value is not None:
            return Imm(value)
        # forward reference to a label defined later is already handled
        # (labels collected in pass 1), so this really is undefined
        raise IsaError(f"line {line_no}: undefined branch target {token!r}")
    raise IsaError(f"line {line_no}: bad operand kind {kind!r}")  # pragma: no cover


def _try_int(token: str, symbols: Dict[str, int]) -> Optional[int]:
    if token in symbols:
        return int(symbols[token])
    if _INT_RE.match(token):
        return int(token, 0)
    return None
