"""Two-pass text assembler.

Syntax, one instruction per line::

    ; comment (also '#')
    loop:               ; labels end with ':'
        movi r1, 10
        addi r1, r1, -1
        bne  r1, r0, loop
        monitor r2
        mwait
        rpull 3, r1, pc  ; vtid 3, local r1, remote register 'pc'
        halt

Operand parsing is driven by the opcode's spec: ``R`` operands must be
register tokens, ``RI`` accepts either, ``N`` is a symbolic register
name, ``L`` a label or absolute index. Immediates may be decimal,
negative, or ``0x`` hex, and may reference ``symbols`` passed by the
caller (e.g. buffer addresses allocated at build time)::

    assemble("movi r1, RX_TAIL", symbols={"RX_TAIL": 0x5000})
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import IsaError
from repro.isa.instructions import Imm, Instruction, Label, OPS, Reg, RegName
from repro.isa.program import Program

_REGISTER_RE = re.compile(r"^(r\d+|v\d+|pc|flags|edp|tdtr|priv)$")
_LABEL_DEF_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")


def assemble(source: str, name: str = "program",
             symbols: Optional[Dict[str, int]] = None) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    symbols = symbols or {}
    lines = _clean(source)

    # pass 1: label indices
    labels: Dict[str, int] = {}
    instruction_lines: List[Tuple[int, str]] = []
    for line_no, text in lines:
        match = _LABEL_DEF_RE.match(text)
        if match:
            label = match.group(1)
            if label in labels:
                raise IsaError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = len(instruction_lines)
        else:
            instruction_lines.append((line_no, text))

    # pass 2: instructions
    instructions: List[Instruction] = []
    for line_no, text in instruction_lines:
        instructions.append(_parse_instruction(line_no, text, labels, symbols))
    return Program(instructions, labels, name=name)


class AsmTemplate:
    """Parse a source once, instantiate it many times with late symbols.

    The hot loaders (the ISA cluster backend binds a fresh program to a
    slot for every request) emit the same source text with only a few
    immediates changed -- re-running the regex parser per request is
    pure waste. A template parses the source a single time; tokens
    listed in ``dynamic`` become *holes* (immediate operands bound at
    :meth:`instantiate` time), every other instruction is parsed -- and
    shared -- once. Instantiated programs also share the template's
    pre-decoded handler chain (see :meth:`decode_instance`): only the
    hole instructions are re-compiled per instantiation.

        template = AsmTemplate("work N\\nhalt", dynamic=("N",))
        program = template.instantiate({"N": 400})
    """

    def __init__(self, source: str, name: str = "template",
                 symbols: Optional[Dict[str, int]] = None,
                 dynamic: Tuple[str, ...] = ()):
        self.name = name
        self._dynamic = tuple(dynamic)
        dynamic_set = set(dynamic)
        symbols = symbols or {}
        lines = _clean(source)
        labels: Dict[str, int] = {}
        instruction_lines: List[Tuple[int, str]] = []
        for line_no, text in lines:
            match = _LABEL_DEF_RE.match(text)
            if match:
                label = match.group(1)
                if label in labels:
                    raise IsaError(f"line {line_no}: duplicate label {label!r}")
                labels[label] = len(instruction_lines)
            else:
                instruction_lines.append((line_no, text))
        self._labels = labels
        #: per instruction: either a finished (shared) Instruction, or a
        #: recipe (op, operands-with-None-holes, [(position, token)])
        self._entries: List[object] = []
        self._holes: List[int] = []
        for index, (line_no, text) in enumerate(instruction_lines):
            parts = text.split(None, 1)
            op = parts[0].lower()
            if op in ("and", "or"):
                op += "_"
            spec = OPS.get(op)
            if spec is None:
                raise IsaError(f"line {line_no}: unknown opcode {parts[0]!r}")
            tokens = [t.strip() for t in parts[1].split(",")] \
                if len(parts) > 1 else []
            if len(tokens) != len(spec.operands):
                raise IsaError(
                    f"line {line_no}: {op} expects {len(spec.operands)} "
                    f"operands, got {len(tokens)}")
            hole_slots: List[Tuple[int, str]] = []
            operands: List[object] = []
            for position, (token, kind) in enumerate(zip(tokens, spec.operands)):
                if token in dynamic_set:
                    if kind not in ("I", "RI", "L"):
                        raise IsaError(
                            f"line {line_no}: dynamic symbol {token!r} must "
                            f"fill an immediate operand, not kind {kind!r}")
                    operands.append(None)
                    hole_slots.append((position, token))
                else:
                    operands.append(_parse_operand(
                        line_no, op, token, kind, labels, symbols))
            if hole_slots:
                self._entries.append((op, operands, hole_slots))
                self._holes.append(index)
            else:
                self._entries.append(Instruction(op, tuple(operands)))
        self._hole_set = frozenset(self._holes)
        # decode sharing (filled on first decode_instance call)
        self._proto_decoded = None
        self._proto_dispatch = None

    def instantiate(self, values: Dict[str, int],
                    name: Optional[str] = None) -> Program:
        """Bind the dynamic symbols and return a fresh :class:`Program`."""
        instructions: List[Instruction] = []
        for entry in self._entries:
            if isinstance(entry, Instruction):
                instructions.append(entry)
                continue
            op, operands, hole_slots = entry
            bound = list(operands)
            for position, token in hole_slots:
                bound[position] = Imm(int(values[token]))
            instructions.append(Instruction(op, tuple(bound)))
        program = Program(instructions, self._labels,
                          name=name or self.name)
        program._decode_hint = (self, self._hole_set)
        return program

    def rebind(self, program: Program, values: Dict[str, int],
               name: Optional[str] = None) -> Program:
        """Re-point an instantiated program's holes at new values, in place.

        The slot loaders run the same template shape back to back with
        only the work immediates changing; rebinding swaps the hole
        instructions (and, when a handler chain has been built, their
        decoded handlers) instead of constructing a fresh program and
        re-deriving the chain per request. Holes are excluded from
        superinstruction fusion, so the chain's fused structure is
        untouched by a rebind. Only programs this template instantiated
        may be rebound.
        """
        instructions = program.instructions
        decoded = program._decoded_cache
        if decoded is not None:
            from repro.isa.decode import build_handler
        for index in self._holes:
            op, operands, hole_slots = self._entries[index]
            bound = list(operands)
            for position, token in hole_slots:
                bound[position] = Imm(int(values[token]))
            instructions[index] = Instruction(op, tuple(bound))
            if decoded is not None:
                decoded.handlers[index] = build_handler(
                    instructions[index], index + 1, program,
                    self._proto_dispatch)
        if name is not None:
            program.name = name
        return program

    def decode_instance(self, program: Program, holes, dispatch):
        """Decoded handler chain for an instantiated program.

        Non-hole handlers are compiled once (against a zero-filled
        proto instantiation, with fusion blocked across holes) and
        shared; only the hole instructions are re-compiled with the
        instance's immediates.
        """
        from repro.isa.decode import (DecodedProgram, build_handler,
                                      decode_program)
        proto = self._proto_decoded
        if proto is None or self._proto_dispatch is not dispatch:
            proto_program = self.instantiate(
                {token: 0 for token in self._dynamic}, name=self.name)
            proto = decode_program(proto_program, dispatch,
                                   no_fuse=self._hole_set)
            self._proto_decoded = proto
            self._proto_dispatch = dispatch
        handlers = list(proto.handlers)
        for index in holes:
            handlers[index] = build_handler(
                program.instructions[index], index + 1, program, dispatch)
        return DecodedProgram(handlers)


# ----------------------------------------------------------------------
def _clean(source: str) -> List[Tuple[int, str]]:
    out = []
    for line_no, raw in enumerate(source.splitlines(), start=1):
        text = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        if text:
            out.append((line_no, text))
    return out


def _parse_instruction(line_no: int, text: str, labels: Dict[str, int],
                       symbols: Dict[str, int]) -> Instruction:
    parts = text.split(None, 1)
    op = parts[0].lower()
    # 'and'/'or' are Python keywords; specs use trailing underscore
    if op in ("and", "or"):
        op += "_"
    spec = OPS.get(op)
    if spec is None:
        raise IsaError(f"line {line_no}: unknown opcode {parts[0]!r}")
    tokens = [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []
    if len(tokens) != len(spec.operands):
        raise IsaError(
            f"line {line_no}: {op} expects {len(spec.operands)} operands, "
            f"got {len(tokens)}")
    operands = []
    for token, kind in zip(tokens, spec.operands):
        operands.append(_parse_operand(line_no, op, token, kind, labels, symbols))
    return Instruction(op, tuple(operands))


def _parse_operand(line_no: int, op: str, token: str, kind: str,
                   labels: Dict[str, int], symbols: Dict[str, int]):
    if not token:
        raise IsaError(f"line {line_no}: empty operand in {op}")
    if kind == "R":
        if _REGISTER_RE.match(token):
            return Reg(token)
        raise IsaError(f"line {line_no}: {op} needs a register, got {token!r}")
    if kind == "N":
        if _REGISTER_RE.match(token):
            return RegName(token)
        raise IsaError(f"line {line_no}: {op} needs a register name, got {token!r}")
    if kind == "I":
        value = _try_int(token, symbols)
        if value is None:
            raise IsaError(f"line {line_no}: {op} needs an immediate, got {token!r}")
        return Imm(value)
    if kind == "RI":
        if _REGISTER_RE.match(token):
            return Reg(token)
        value = _try_int(token, symbols)
        if value is None:
            raise IsaError(
                f"line {line_no}: {op} needs a register or immediate, got {token!r}")
        return Imm(value)
    if kind == "L":
        if token in labels:
            return Label(token)
        value = _try_int(token, symbols)
        if value is not None:
            return Imm(value)
        # forward reference to a label defined later is already handled
        # (labels collected in pass 1), so this really is undefined
        raise IsaError(f"line {line_no}: undefined branch target {token!r}")
    raise IsaError(f"line {line_no}: bad operand kind {kind!r}")  # pragma: no cover


def _try_int(token: str, symbols: Dict[str, int]) -> Optional[int]:
    if token in symbols:
        return int(symbols[token])
    if _INT_RE.match(token):
        return int(token, 0)
    return None
