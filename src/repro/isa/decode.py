"""Pre-decoded handler chains: the interpreter with decode hoisted out.

The naive interpreter in :mod:`repro.hw.core` re-decodes every
instruction on every issue: a ``_DISPATCH`` dict probe, per-operand
``isinstance`` checks, register access by string name, and runtime
label resolution. None of that depends on anything but the program
text, so this module does it once: each :class:`Instruction` is
compiled into a closure ``handler(core, thread) -> cost`` with

- register operands resolved to GPR list indices (read/written
  directly, bypassing ``ArchState.read``/``write`` string dispatch),
- ``Label`` branch targets resolved to instruction indices,
- the constant base latency folded into the returned cost, and
- the fall-through pc captured as a constant (``pc`` is assigned
  exactly once per instruction, mirroring the naive pre-advance).

Straight-line runs of single-cycle, pure-GPR ALU instructions are
additionally *fused* into superinstructions: the first pick executes
the whole run's register effects eagerly and converts the remaining
``k-1`` instructions into ``work``-style burn cycles, so the core
issues (and the event engine schedules) once per run instead of once
per instruction while the cycle-for-cycle issue pattern other threads
observe stays identical. An undo log makes the fusion invisible to
external observers: if the thread is stopped or the core halts
mid-run, :meth:`repro.hw.core.HWCore._materialize_fused` rewinds to
the exact architectural state naive stepping would show.

Cost contract (mirrors ``HWCore._execute`` + ``_issue_one``): every
handler returns the *total* cost (base latency plus any dynamic
extra), always >= 1; a handler that raises :class:`GuestFault` is
charged its ``latency`` attribute (the base latency) by the
dispatcher, exactly like the naive path. Handlers assign
``thread.arch.pc`` before any faulting access so the exception
descriptor's ``faulting_pc = pc - 1`` arithmetic is unchanged.

The decoded table has ``len(program) + 1`` slots; the extra slot holds
``None``, the HALT sentinel: running off the end of the program (the
implicit halt that :meth:`Program.fetch` signals with an ``IsaError``)
becomes a plain ``is None`` check, so the hot loop never raises. Wild
jumps outside ``[0, len]`` are bounds-checked by the dispatcher and
halt identically.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.arch.registers import GPR_COUNT
from repro.errors import IsaError
from repro.isa.instructions import Imm, Instruction, Label, OPS, Reg

Handler = Callable[..., int]


class DecodedProgram:
    """A program compiled to a handler chain (one closure per pc)."""

    __slots__ = ("handlers", "size")

    def __init__(self, handlers: List[Optional[Handler]]):
        self.handlers = handlers
        #: valid pc range is [0, size); handlers[len] is the HALT sentinel
        self.size = len(handlers)


class FusedRun:
    """Undo record for an in-flight superinstruction (see module doc)."""

    __slots__ = ("start_pc", "length", "undo", "effects")

    def __init__(self, start_pc: int, length: int, undo, effects):
        self.start_pc = start_pc
        self.length = length
        self.undo = undo          # [(gpr_index, value before the run)]
        self.effects = effects    # per-instruction register effects


# ----------------------------------------------------------------------
# operand helpers
# ----------------------------------------------------------------------
def _gpr(operand) -> Optional[int]:
    """GPR slot index for a plain ``rN`` register operand, else None."""
    if not isinstance(operand, Reg):
        return None
    name = operand.name
    if name[0] == "r" and name[1:].isdigit():
        index = int(name[1:])
        if 0 <= index < GPR_COUNT:
            return index
    return None


def _resolve_target(operand, program) -> Optional[int]:
    """Branch target as an instruction index, or None if undefined.

    Undefined labels keep the naive behavior (an ``IsaError`` raised at
    execution time, not at decode time): a dangling branch that never
    executes must not break loading.
    """
    if isinstance(operand, Label):
        if operand.name in program.labels:
            return program.labels[operand.name]
        return None
    return operand.value


# ----------------------------------------------------------------------
# per-op handler builders. Each returns handler(core, thread) -> cost.
# ----------------------------------------------------------------------
def _generic(op: str, operands, next_pc: int, latency: int,
             method) -> Handler:
    """Fallback: delegate to the naive ``_op_*`` semantics.

    Used for the cold thread-management/CSR tail and for any operand
    shape the fast builders do not special-case (e.g. ``movi pc, 5`` --
    the assembler accepts special registers wherever ``R`` is legal).
    The per-instruction constants (bound method, operand tuple, base
    latency, next pc) are still resolved once.
    """
    def run(core, thread):
        thread.arch.pc = next_pc
        extra = method(core, thread, operands)
        return latency + (extra or 0)
    run.latency = latency
    return run


def _make_alu(instruction: Instruction, next_pc: int) -> Optional[Handler]:
    """Fast single-instruction handler for a pure-GPR ALU op, or None."""
    effect = _alu_effect(instruction)
    if effect is None:
        return None

    def run(core, thread):
        arch = thread.arch
        arch.pc = next_pc
        effect(arch.gprs)
        return 1
    run.latency = 1
    return run


#: single-cycle ALU ops eligible for fast handlers and fusion
FUSABLE_OPS = frozenset(
    ["nop", "movi", "mov", "add", "addi", "sub",
     "and_", "or_", "xor", "shl", "shr"])


def _alu_effect(instruction: Instruction):
    """Compile a fusable ALU op to ``effect(gprs)``; None if ineligible.

    Eligible ops are single-cycle, cannot fault, touch only plain GPR
    slots (no pc/flags/control/vector operands, which need
    ``ArchState.write`` side effects), and have no work/monitor
    semantics -- exactly the ops whose whole behavior is a pure
    function of the GPR file.
    """
    op = instruction.op
    if op not in FUSABLE_OPS:
        return None
    ops = instruction.operands
    if op == "nop":
        def effect(gprs):
            return None
        effect.dest = None
        return effect
    rd = _gpr(ops[0])
    if rd is None:
        return None
    if op == "movi":
        imm = ops[1].value

        def effect(gprs):
            gprs[rd] = imm
    elif op == "mov":
        rs = _gpr(ops[1])
        if rs is None:
            return None

        def effect(gprs):
            gprs[rd] = gprs[rs]
    elif op in ("addi", "shl", "shr"):
        rs = _gpr(ops[1])
        if rs is None:
            return None
        imm = ops[2].value
        if op == "addi":
            def effect(gprs):
                gprs[rd] = gprs[rs] + imm
        elif op == "shl":
            def effect(gprs):
                gprs[rd] = gprs[rs] << imm
        else:
            def effect(gprs):
                gprs[rd] = gprs[rs] >> imm
    else:  # add, sub, and_, or_, xor
        rs = _gpr(ops[1])
        rt = _gpr(ops[2])
        if rs is None or rt is None:
            return None
        if op == "add":
            def effect(gprs):
                gprs[rd] = gprs[rs] + gprs[rt]
        elif op == "sub":
            def effect(gprs):
                gprs[rd] = gprs[rs] - gprs[rt]
        elif op == "and_":
            def effect(gprs):
                gprs[rd] = gprs[rs] & gprs[rt]
        elif op == "or_":
            def effect(gprs):
                gprs[rd] = gprs[rs] | gprs[rt]
        else:
            def effect(gprs):
                gprs[rd] = gprs[rs] ^ gprs[rt]
    effect.dest = rd
    return effect


def _make_fused(effects, start_pc: int, length: int) -> Handler:
    """Superinstruction: run ``length`` fused ALU ops in one pick.

    All register effects apply eagerly (with an undo snapshot of the
    distinct destination slots); the remaining ``length - 1``
    instructions become burn cycles through the existing
    ``work_remaining`` machinery, so the thread occupies its issue slot
    for exactly one cycle per fused instruction and the pick stream
    other threads see is cycle-identical to naive stepping. Retirement
    counters are credited up front and rolled back by
    ``_materialize_fused`` if the run is interrupted.
    """
    end_pc = start_pc + length
    dests = tuple(sorted({e.dest for e in effects if e.dest is not None}))
    extra = length - 1

    def run(core, thread):
        arch = thread.arch
        gprs = arch.gprs
        undo = [(d, gprs[d]) for d in dests]
        for effect in effects:
            effect(gprs)
        arch.pc = end_pc
        thread.work_remaining = extra
        thread._fused = FusedRun(start_pc, length, undo, effects)
        thread.instructions_executed += extra
        core.instructions_retired += extra
        return 1
    run.latency = 1
    return run


def _make_div(instruction: Instruction, next_pc: int) -> Optional[Handler]:
    rd = _gpr(instruction.operands[0])
    rs = _gpr(instruction.operands[1])
    rt = _gpr(instruction.operands[2])
    if rd is None or rs is None or rt is None:
        return None
    from repro.hw.exceptions import ExceptionKind

    def run(core, thread):
        arch = thread.arch
        arch.pc = next_pc
        gprs = arch.gprs
        if gprs[rt] == 0:
            core._raise_exception(thread, ExceptionKind.DIV_ZERO)
            return 12
        gprs[rd] = gprs[rs] // gprs[rt]
        return 12
    run.latency = 12
    return run


def _make_mul(instruction: Instruction, next_pc: int) -> Optional[Handler]:
    rd = _gpr(instruction.operands[0])
    rs = _gpr(instruction.operands[1])
    rt = _gpr(instruction.operands[2])
    if rd is None or rs is None or rt is None:
        return None

    def run(core, thread):
        arch = thread.arch
        arch.pc = next_pc
        gprs = arch.gprs
        gprs[rd] = gprs[rs] * gprs[rt]
        return 3
    run.latency = 3
    return run


def _make_ld(instruction: Instruction, next_pc: int) -> Optional[Handler]:
    rd = _gpr(instruction.operands[0])
    rs = _gpr(instruction.operands[1])
    if rd is None or rs is None:
        return None
    offset = instruction.operands[2].value

    def run(core, thread):
        arch = thread.arch
        arch.pc = next_pc
        gprs = arch.gprs
        gprs[rd] = core.memory.load(gprs[rs] + offset)
        return 2 + core.costs.l1_hit_cycles
    run.latency = 2
    return run


def _make_st(instruction: Instruction, next_pc: int) -> Optional[Handler]:
    rs = _gpr(instruction.operands[0])
    rt = _gpr(instruction.operands[2])
    if rs is None or rt is None:
        return None
    offset = instruction.operands[1].value

    def run(core, thread):
        arch = thread.arch
        arch.pc = next_pc
        gprs = arch.gprs
        memory = core.memory
        memory.store(gprs[rs] + offset, gprs[rt], source=thread.mem_source)
        coherence = memory.watch_bus.coherence
        if coherence is not None:
            return 2 + core.costs.l1_hit_cycles + coherence.last_write_cycles
        return 2 + core.costs.l1_hit_cycles
    run.latency = 2
    return run


def _make_faa(instruction: Instruction, next_pc: int) -> Optional[Handler]:
    rd = _gpr(instruction.operands[0])
    rs = _gpr(instruction.operands[1])
    if rd is None or rs is None:
        return None
    delta = instruction.operands[2].value

    def run(core, thread):
        arch = thread.arch
        arch.pc = next_pc
        gprs = arch.gprs
        memory = core.memory
        gprs[rd] = memory.fetch_add(gprs[rs], delta, source=thread.mem_source)
        coherence = memory.watch_bus.coherence
        if coherence is not None:
            return 4 + core.costs.l1_hit_cycles + coherence.last_write_cycles
        return 4 + core.costs.l1_hit_cycles
    run.latency = 4
    return run


def _undefined_label(name: str, program_name: str, next_pc: int) -> Handler:
    """Match the naive runtime error for a dangling label."""
    def run(core, thread):
        thread.arch.pc = next_pc
        raise IsaError(f"undefined label {name!r} in {program_name!r}")
    run.latency = 1
    return run


def _make_jmp(instruction: Instruction, next_pc: int, program) -> Handler:
    target = _resolve_target(instruction.operands[0], program)
    if target is None:
        return _undefined_label(instruction.operands[0].name,
                                program.name, next_pc)

    def run(core, thread):
        thread.arch.pc = target
        return 1
    run.latency = 1
    return run


def _make_branch(instruction: Instruction, next_pc: int,
                 program) -> Optional[Handler]:
    rs = _gpr(instruction.operands[0])
    rt = _gpr(instruction.operands[1])
    if rs is None or rt is None:
        return None
    target = _resolve_target(instruction.operands[2], program)
    if target is None:
        return _undefined_label(instruction.operands[2].name,
                                program.name, next_pc)
    op = instruction.op

    if op == "beq":
        def run(core, thread):
            arch = thread.arch
            gprs = arch.gprs
            arch.pc = target if gprs[rs] == gprs[rt] else next_pc
            return 1
    elif op == "bne":
        def run(core, thread):
            arch = thread.arch
            gprs = arch.gprs
            arch.pc = target if gprs[rs] != gprs[rt] else next_pc
            return 1
    elif op == "blt":
        def run(core, thread):
            arch = thread.arch
            gprs = arch.gprs
            arch.pc = target if gprs[rs] < gprs[rt] else next_pc
            return 1
    else:  # bge
        def run(core, thread):
            arch = thread.arch
            gprs = arch.gprs
            arch.pc = target if gprs[rs] >= gprs[rt] else next_pc
            return 1
    run.latency = 1
    return run


def _make_jal(instruction: Instruction, next_pc: int,
              program) -> Optional[Handler]:
    rd = _gpr(instruction.operands[0])
    if rd is None:
        return None
    target = _resolve_target(instruction.operands[1], program)
    if target is None:
        return _undefined_label(instruction.operands[1].name,
                                program.name, next_pc)

    def run(core, thread):
        arch = thread.arch
        arch.gprs[rd] = next_pc   # the naive path links the advanced pc
        arch.pc = target
        return 1
    run.latency = 1
    return run


def _make_jr(instruction: Instruction, next_pc: int) -> Optional[Handler]:
    rs = _gpr(instruction.operands[0])
    if rs is None:
        return None

    def run(core, thread):
        arch = thread.arch
        arch.pc = arch.gprs[rs]
        return 1
    run.latency = 1
    return run


def _make_halt(next_pc: int) -> Handler:
    def run(core, thread):
        thread.arch.pc = next_pc
        core._halt_thread(thread)
        return 1
    run.latency = 1
    return run


def _make_work(instruction: Instruction, next_pc: int) -> Handler:
    remaining = max(instruction.operands[0].value - 1, 0)

    def run(core, thread):
        thread.arch.pc = next_pc
        thread.work_remaining = remaining
        thread._fused = None
        return 1
    run.latency = 1
    return run


def _make_monitor(instruction: Instruction,
                  next_pc: int) -> Optional[Handler]:
    rs = _gpr(instruction.operands[0])
    if rs is None:
        return None

    def run(core, thread):
        arch = thread.arch
        arch.pc = next_pc
        return 2 + thread.monitor.arm(arch.gprs[rs])
    run.latency = 2
    return run


def _make_mwait(next_pc: int) -> Handler:
    def run(core, thread):
        thread.arch.pc = next_pc
        if thread.monitor.wait():
            thread.make_waiting()
        return 1
    run.latency = 1
    return run


# ----------------------------------------------------------------------
# the decoder
# ----------------------------------------------------------------------
def build_handler(instruction: Instruction, next_pc: int, program,
                  dispatch: Dict[str, Callable]) -> Handler:
    """Compile one instruction at index ``next_pc - 1``."""
    op = instruction.op
    handler: Optional[Handler] = None
    if op in FUSABLE_OPS:
        handler = _make_alu(instruction, next_pc)
    elif op == "mul":
        handler = _make_mul(instruction, next_pc)
    elif op == "div":
        handler = _make_div(instruction, next_pc)
    elif op == "ld":
        handler = _make_ld(instruction, next_pc)
    elif op == "st":
        handler = _make_st(instruction, next_pc)
    elif op == "faa":
        handler = _make_faa(instruction, next_pc)
    elif op == "jmp":
        handler = _make_jmp(instruction, next_pc, program)
    elif op in ("beq", "bne", "blt", "bge"):
        handler = _make_branch(instruction, next_pc, program)
    elif op == "jal":
        handler = _make_jal(instruction, next_pc, program)
    elif op == "jr":
        handler = _make_jr(instruction, next_pc)
    elif op == "halt":
        handler = _make_halt(next_pc)
    elif op == "work":
        handler = _make_work(instruction, next_pc)
    elif op == "monitor":
        handler = _make_monitor(instruction, next_pc)
    elif op == "mwait":
        handler = _make_mwait(next_pc)
    if handler is None:
        spec = OPS[op]
        handler = _generic(op, instruction.operands, next_pc,
                           spec.latency, dispatch[op])
    return handler


def decode_program(program, dispatch: Dict[str, Callable],
                   no_fuse: Optional[Set[int]] = None) -> DecodedProgram:
    """Compile ``program`` into a :class:`DecodedProgram`.

    ``dispatch`` is the naive ``_op_*`` table (passed in by the core to
    avoid an isa -> hw import cycle) backing the generic fallbacks.
    ``no_fuse`` marks indices excluded from superinstruction fusion
    (template holes whose handler is rebuilt per instantiation).
    """
    instructions = program.instructions
    count = len(instructions)
    handlers: List[Optional[Handler]] = [
        build_handler(instr, index + 1, program, dispatch)
        for index, instr in enumerate(instructions)
    ]
    handlers.append(None)   # the HALT sentinel: pc == len is implicit halt

    # superinstruction fusion: maximal runs (length >= 2) of fusable
    # ALU ops. The fused handler replaces the run-start slot only;
    # every interior index keeps its individual handler so dynamic
    # jumps into the middle of a run execute instruction-at-a-time.
    blocked = no_fuse or ()
    index = 0
    while index < count:
        effect = None if index in blocked \
            else _alu_effect(instructions[index])
        if effect is None:
            index += 1
            continue
        effects = [effect]
        scan = index + 1
        while scan < count and scan not in blocked:
            nxt = _alu_effect(instructions[scan])
            if nxt is None:
                break
            effects.append(nxt)
            scan += 1
        if len(effects) >= 2:
            handlers[index] = _make_fused(effects, index, len(effects))
        index = scan
    return DecodedProgram(handlers)
