"""Programs: assembled instruction sequences with resolved labels."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import IsaError
from repro.isa.instructions import Instruction


class Program:
    """An immutable sequence of instructions plus its label map.

    The program counter is an instruction *index* (the behavioral model
    has no byte-level code layout); ``pc`` in :class:`ArchState` holds
    this index.
    """

    def __init__(self, instructions: List[Instruction],
                 labels: Optional[Dict[str, int]] = None,
                 name: str = "program"):
        self.instructions = list(instructions)
        self.labels = dict(labels or {})
        self.name = name
        #: lazily built handler chain (repro.isa.decode); keyed to the
        #: program, so every thread running it shares one decode
        self._decoded_cache = None
        #: set by AsmTemplate.instantiate: (template, hole indices),
        #: letting the decode reuse the template's shared handler chain
        self._decode_hint = None
        for label, target in self.labels.items():
            if not 0 <= target <= len(self.instructions):
                raise IsaError(
                    f"label {label!r} points at {target}, program has "
                    f"{len(self.instructions)} instructions")

    def __len__(self) -> int:
        return len(self.instructions)

    def fetch(self, pc: int) -> Instruction:
        """Fetch by index; running off the end is an implicit halt."""
        if not 0 <= pc < len(self.instructions):
            raise IsaError(f"pc {pc} outside program {self.name!r}")
        return self.instructions[pc]

    def decoded(self, dispatch):
        """The pre-decoded handler chain (built once, then cached).

        ``dispatch`` is the naive interpreter's op table (the core
        passes ``HWCore._DISPATCH``), backing the generic fallback
        handlers without an isa -> hw import cycle.
        """
        cache = self._decoded_cache
        if cache is None:
            hint = self._decode_hint
            if hint is not None:
                template, holes = hint
                cache = template.decode_instance(self, holes, dispatch)
            else:
                from repro.isa.decode import decode_program
                cache = decode_program(self, dispatch)
            self._decoded_cache = cache
        return cache

    def resolve(self, label: str) -> int:
        target = self.labels.get(label)
        if target is None:
            raise IsaError(f"undefined label {label!r} in {self.name!r}")
        return target

    def listing(self) -> str:
        """Human-readable disassembly with label annotations."""
        by_index: Dict[int, List[str]] = {}
        for label, target in self.labels.items():
            by_index.setdefault(target, []).append(label)
        lines = []
        for i, instr in enumerate(self.instructions):
            for label in by_index.get(i, []):
                lines.append(f"{label}:")
            lines.append(f"  {i:4d}  {instr}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Program {self.name} len={len(self.instructions)}>"
