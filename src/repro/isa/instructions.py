"""Instruction and operand definitions.

Operands are typed wrappers so the interpreter can dispatch without
string-sniffing:

- :class:`Reg` -- a general/vector register read through the local state
- :class:`RegName` -- a register *name* operand (for rpull/rpush/csr,
  which address registers symbolically, including ``pc`` and ``edp``)
- :class:`Imm` -- immediate integer
- :class:`Label` -- branch target, resolved to an instruction index by
  the assembler
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

from repro.errors import IsaError


@dataclass(frozen=True)
class Reg:
    """A register operand read/written via the executing thread."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class RegName:
    """A symbolic register-name operand (rpull/rpush/csrr/csrw)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate integer operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Label:
    """A code label; the assembler resolves it to an instruction index."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Reg, RegName, Imm, Label]

# operand-kind codes used in OP specs:
#   R  = register            (Reg)
#   RI = register or imm     (Reg | Imm)   -- e.g. vtid operands
#   I  = immediate           (Imm)
#   N  = register name       (RegName)
#   L  = label               (Label | Imm) -- branch target
OPERAND_KINDS = {"R", "RI", "I", "N", "L"}


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    name: str
    operands: Tuple[str, ...]
    latency: int = 1
    privileged: bool = False
    description: str = ""


def _spec(name: str, operands: str, latency: int = 1, privileged: bool = False,
          description: str = "") -> OpSpec:
    kinds = tuple(operands.split()) if operands else ()
    for kind in kinds:
        if kind not in OPERAND_KINDS:
            raise IsaError(f"bad operand kind {kind!r} in spec for {name}")
    return OpSpec(name, kinds, latency, privileged, description)


#: The opcode table. Latencies are *base* issue latencies; memory and
#: thread-management costs are layered on by the core using CostModel.
OPS: Dict[str, OpSpec] = {spec.name: spec for spec in [
    # --- base ALU -----------------------------------------------------
    _spec("nop", "", description="do nothing"),
    _spec("movi", "R I", description="rd <- imm"),
    _spec("mov", "R R", description="rd <- rs"),
    _spec("add", "R R R", description="rd <- rs + rt"),
    _spec("addi", "R R I", description="rd <- rs + imm"),
    _spec("sub", "R R R", description="rd <- rs - rt"),
    _spec("mul", "R R R", latency=3, description="rd <- rs * rt"),
    _spec("div", "R R R", latency=12, description="rd <- rs / rt; /0 faults"),
    _spec("and_", "R R R", description="rd <- rs & rt"),
    _spec("or_", "R R R", description="rd <- rs | rt"),
    _spec("xor", "R R R", description="rd <- rs ^ rt"),
    _spec("shl", "R R I", description="rd <- rs << imm"),
    _spec("shr", "R R I", description="rd <- rs >> imm"),
    # --- memory -------------------------------------------------------
    _spec("ld", "R R I", latency=2, description="rd <- mem[rs + imm]"),
    _spec("st", "R I R", latency=2, description="mem[rs + imm] <- rt"),
    _spec("faa", "R R I", latency=4,
          description="rd <- atomically (mem[rs] += imm)"),
    # --- control flow ---------------------------------------------------
    _spec("jmp", "L", description="pc <- label"),
    _spec("beq", "R R L", description="if rs == rt: pc <- label"),
    _spec("bne", "R R L", description="if rs != rt: pc <- label"),
    _spec("blt", "R R L", description="if rs < rt: pc <- label"),
    _spec("bge", "R R L", description="if rs >= rt: pc <- label"),
    _spec("jal", "R L", description="rd <- return pc; pc <- label"),
    _spec("jr", "R", description="pc <- rs"),
    _spec("halt", "", description="disable this ptid, exit status in r0"),
    # --- modeling pseudo-ops ---------------------------------------------
    _spec("work", "I", description="consume imm cycles of computation"),
    _spec("fwork", "I",
          description="consume imm cycles using FP/vector units "
                      "(dirties vector state: 272B -> 784B footprint)"),
    _spec("vmovi", "R I", description="vector reg <- imm (dirties FP state)"),
    _spec("vadd", "R R R", description="vector add (dirties FP state)"),
    # --- proposed extensions (Section 3.1) -----------------------------
    _spec("monitor", "R", latency=2,
          description="arm a watch on the line holding the address in rs"),
    _spec("mwait", "", latency=1,
          description="block until a watched write; falls through if one "
                      "arrived since the last arm (no lost wakeups)"),
    _spec("start", "RI",
          description="enable the ptid mapped to vtid (TDT-checked)"),
    _spec("stop", "RI",
          description="disable the ptid mapped to vtid (TDT-checked)"),
    _spec("rpull", "RI R N",
          description="local-reg <- remote register of disabled ptid(vtid)"),
    _spec("rpush", "RI N R",
          description="remote register of disabled ptid(vtid) <- local-reg"),
    _spec("invtid", "RI RI", latency=2,
          description="invalidate cached TDT entry remote-vtid of vtid"),
    # --- exceptions & security ------------------------------------------
    _spec("trap", "I", latency=3,
          description="write an exception descriptor (kind=syscall, "
                      "code=imm) and disable this ptid"),
    _spec("privop", "I", latency=2, privileged=True,
          description="privileged op (wrmsr-like); from user mode writes "
                      "a privilege-fault descriptor and disables the ptid"),
    _spec("csrr", "R N", description="rd <- own control register"),
    _spec("csrw", "N R",
          description="own control register <- rs; tdtr/priv require "
                      "supervisor mode"),
    _spec("setkey", "R", latency=2,
          description="set this ptid's secret key (key security model)"),
]}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    op: str
    operands: Tuple[Operand, ...] = field(default=())

    def __post_init__(self) -> None:
        spec = OPS.get(self.op)
        if spec is None:
            raise IsaError(f"unknown opcode {self.op!r}")
        if len(self.operands) != len(spec.operands):
            raise IsaError(
                f"{self.op} expects {len(spec.operands)} operands, "
                f"got {len(self.operands)}")
        for operand, kind in zip(self.operands, spec.operands):
            if not _operand_matches(operand, kind):
                raise IsaError(
                    f"{self.op}: operand {operand!r} does not match kind {kind}")

    @property
    def spec(self) -> OpSpec:
        return OPS[self.op]

    def __str__(self) -> str:
        if not self.operands:
            return self.op
        return f"{self.op} " + ", ".join(str(o) for o in self.operands)


def _operand_matches(operand: Operand, kind: str) -> bool:
    if kind == "R":
        return isinstance(operand, Reg)
    if kind == "I":
        return isinstance(operand, Imm)
    if kind == "RI":
        return isinstance(operand, (Reg, Imm))
    if kind == "N":
        return isinstance(operand, RegName)
    if kind == "L":
        return isinstance(operand, (Label, Imm))
    return False
