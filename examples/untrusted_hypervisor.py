#!/usr/bin/env python
"""An unprivileged hypervisor serving a guest's VM-exits (Section 2).

The guest executes privileged instructions; each one writes an
exception descriptor and disables the guest ptid. A hypervisor running
entirely in USER mode -- authorized only by a TDT entry -- monitors the
descriptor line, emulates the instruction, and restarts the guest.

Also demonstrates the non-hierarchical privilege example of Section 3.2
(B may stop A, C may stop B, yet C may not stop A).

Run:  python examples/untrusted_hypervisor.py
"""

from repro.analysis.tables import Table
from repro.hypervisor import UntrustedHypervisorDemo
from repro.hypervisor.untrusted import run_permission_matrix


def main() -> None:
    demo = UntrustedHypervisorDemo(iterations=20,
                                   guest_work_cycles=2_000,
                                   handler_work_cycles=400)
    outcome = demo.run()

    print("== guest + user-mode hypervisor (ISA-level) ==")
    print(f"exits handled       : {outcome.exits_handled}")
    print(f"guest iterations    : {outcome.guest_iterations}")
    print(f"guest useful work   : {outcome.guest_work_cycles} cycles")
    print(f"wall clock          : {outcome.wall_cycles} cycles")
    print(f"virtualization tax  : {(outcome.slowdown - 1) * 100:.1f}%")
    print(f"hypervisor privileged? {outcome.hv_ran_privileged}")

    print()
    print("== non-hierarchical privilege (Section 3.2) ==")
    matrix = run_permission_matrix()
    table = Table(["operation", "TDT says", "outcome"])
    table.add_row("B stops A", "allowed",
                  "stopped" if matrix["b_stopped_a"] else "FAILED")
    table.add_row("C stops B", "allowed",
                  "stopped" if matrix["c_stopped_b"] else "FAILED")
    table.add_row("C stops A", "denied",
                  f"faulted ({matrix['c_fault_kind']})"
                  if matrix["c_faulted"] else "unexpectedly allowed")
    print(table.render())
    print()
    print('"Such a configuration is impossible in existing '
          'protection-ring-based designs."')


if __name__ == "__main__":
    main()
