#!/usr/bin/env python
"""Quickstart: the proposed hardware threading model in five minutes.

Builds a machine, runs three hardware threads that communicate through
the paper's primitives -- monitor/mwait, start/stop, rpull/rpush, and
exception descriptors -- and prints what happened.

Run:  python examples/quickstart.py
"""

from repro import build_machine
from repro.hw.exceptions import ExceptionDescriptor
from repro.hw.tdt import Permission


def main() -> None:
    # A core with 64 software-managed hardware threads (ptids), two SMT
    # issue slots, and the paper's cost model.
    machine = build_machine(cores=1, hw_threads_per_core=64)

    mailbox = machine.alloc("mailbox", 64)
    reply = machine.alloc("reply", 64)
    edp = machine.alloc("worker-edp", 64)

    # --- ptid 0: a consumer blocked on the mailbox -------------------
    # This is the paper's core move: instead of an interrupt, the
    # producer's plain store wakes the consumer in ~tens of cycles.
    machine.load_asm(0, """
        movi r1, MAILBOX
        monitor r1
        mwait
        ld r2, r1, 0          ; the delivered value
        movi r3, REPLY
        add r4, r2, r2        ; reply = 2 * value
        st r3, 0, r4
        halt
    """, symbols={"MAILBOX": mailbox.base, "REPLY": reply.base},
        supervisor=False, name="consumer")

    # --- ptid 1: a producer that computes, then writes the mailbox ---
    machine.load_asm(1, """
        work 500              ; some computation
        movi r1, MAILBOX
        movi r2, 21
        st r1, 0, r2          ; this store wakes ptid 0
        halt
    """, symbols={"MAILBOX": mailbox.base}, supervisor=False,
        name="producer")

    # --- ptid 2: a worker that divides by zero ------------------------
    # Exceptions are data: the fault writes a descriptor at the worker's
    # edp and disables it. No trap handler, no IRQ context.
    machine.load_asm(2, """
        movi r1, 10
        movi r2, 0
        div r3, r1, r2        ; faults: descriptor lands at EDP
        halt
    """, supervisor=False, edp=edp.base, name="worker")

    machine.boot(0)
    machine.boot(1)
    machine.boot(2)
    machine.run()  # runs until every thread has halted or blocked
    machine.check()

    print("== consumer/producer via monitor-mwait ==")
    consumer = machine.thread(0)
    print(f"mailbox value : {machine.memory.load(mailbox.base)}")
    print(f"reply value   : {machine.memory.load(reply.base)}")
    print(f"consumer woke : {consumer.wakeups} time(s)")

    print()
    print("== exception descriptor (exceptions as data) ==")
    descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
    print(f"kind          : {descriptor.kind.name}")
    print(f"faulting ptid : {descriptor.ptid}")
    print(f"faulting pc   : {descriptor.pc}")

    print()
    print("== TDT: software-managed thread permissions ==")
    tdt = machine.build_tdt("demo-tdt", {
        0: (0, Permission.ALL),
        1: (1, Permission.START | Permission.STOP),
    })
    entry = tdt.get_entry(1)
    print(f"vtid 1 -> ptid {entry.ptid}, "
          f"permissions 0b{int(entry.permissions):04b}")

    print()
    print(f"simulation time: {machine.engine.now} cycles "
          f"({machine.clock.cycles_to_us(machine.engine.now):.2f} us @3GHz)")


if __name__ == "__main__":
    main()
