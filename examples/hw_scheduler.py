#!/usr/bin/env python
"""An OS scheduler as one hardware thread among many (Section 4).

"The role of the OS scheduler will also change. ... The OS scheduler
will enforce software policies by starting and stopping hardware
threads and setting their priorities. ... Since starting and stopping
threads incurs low overhead, the scheduler will run in much tighter
loops."

The demo builds exactly that: a scheduler ptid blocked on the APIC
timer's counter word wakes every tick, stops the currently running
batch worker, and starts the next one, round-robin -- a time-sliced
policy implemented in ~15 guest instructions with *no interrupts and no
context-switch code*: state stays in each worker's own hardware thread.

Run:  python examples/hw_scheduler.py
"""

from repro.devices import ApicTimer
from repro.hw.tdt import Permission
from repro.machine import build_machine

WORKERS = 3          # worker ptids 1..3
QUANTUM = 5_000      # timer period = the scheduling quantum
TICKS = 12           # total quanta to schedule

_SCHEDULER_ASM = """
    movi r5, 0            ; index of the currently running worker
    start r5              ; kick off worker vtid 0
sched_loop:
    movi r1, TICKCTR
    monitor r1
    mwait
    stop r5               ; preempt the running worker
    addi r5, r5, 1        ; pick the next one, round robin
    movi r6, NWORKERS
    blt r5, r6, no_wrap
    movi r5, 0
no_wrap:
    start r5
    ld r2, r1, 0
    movi r3, TICKS
    blt r2, r3, sched_loop
    stop r5               ; park the last worker
    halt
"""

_WORKER_ASM = """
loop:
    movi r1, PROGRESS
    faa r2, r1, 1         ; one unit of work
    work 80
    jmp loop
"""


def main() -> None:
    machine = build_machine(smt_width=1)  # one pipeline: sharing visible
    tick_counter = machine.alloc("ticks", 64)
    progress = [machine.alloc(f"progress{i}", 64) for i in range(WORKERS)]

    # the scheduler is NOT a supervisor: its authority over the workers
    # comes entirely from TDT entries (start+stop)
    tdt = machine.build_tdt("sched-tdt", {
        i: (i + 1, Permission.START | Permission.STOP)
        for i in range(WORKERS)
    })
    machine.load_asm(0, _SCHEDULER_ASM, symbols={
        "TICKCTR": tick_counter.base, "NWORKERS": WORKERS, "TICKS": TICKS,
    }, supervisor=False, tdtr=tdt.base, name="scheduler")
    for i in range(WORKERS):
        machine.load_asm(i + 1, _WORKER_ASM,
                         symbols={"PROGRESS": progress[i].base},
                         supervisor=False, name=f"worker{i}")

    timer = ApicTimer(machine.engine, machine.memory, tick_counter.base,
                      period_cycles=QUANTUM, max_ticks=TICKS)
    machine.boot(0)
    timer.start()
    machine.run(until=(TICKS + 2) * QUANTUM)
    machine.check()

    units = [machine.memory.load(p.base) for p in progress]
    print("== a time-slicing scheduler in one unprivileged hw thread ==")
    print(f"quanta scheduled     : {TICKS} x {QUANTUM} cycles")
    for i, done in enumerate(units):
        starts = machine.thread(i + 1).starts
        print(f"worker {i}             : {done:>4} work units, "
              f"{starts} activations")
    total = sum(units)
    spread = (max(units) - min(units)) / max(total / WORKERS, 1)
    print(f"fairness             : max-min spread "
          f"{spread * 100:.0f}% of the mean share")
    print(f"scheduler supervisor?: {machine.thread(0).supervisor}")
    print()
    print('"the scheduler will run in much tighter loops, drastically '
          'improving application performance"')


if __name__ == "__main__":
    main()
