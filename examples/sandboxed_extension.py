#!/usr/bin/env python
"""Sandboxing an untrusted kernel extension in its own hardware thread.

Section 2: "other system components can be isolated in a less
privileged mode, such as binary translators and eBPF code. For eBPF, we
could even relax some code restrictions if it ran in its own privilege
domain. Quick hand-offs between hardware threads allow isolation
without loss of performance."

The kernel (supervisor ptid) hands a packet-filter decision to an
untrusted extension ptid via direct start, with a TDT that gives the
*extension* no permissions at all. The extension:

1. computes its verdict and hands back control (the fast path);
2. eventually misbehaves -- executes a privileged instruction -- and is
   cleanly disabled with an exception descriptor the kernel inspects,
   instead of taking the whole kernel down.

Run:  python examples/sandboxed_extension.py
"""

from repro.hw.exceptions import ExceptionDescriptor, descriptor_present
from repro.hw.tdt import Permission
from repro.machine import build_machine

KERNEL_PTID = 0
EXT_PTID = 1
ROUNDS = 6
MISBEHAVE_AT = 4  # the extension goes rogue on this round

_KERNEL_ASM = """
    movi r5, 0              ; round counter
kernel_loop:
    work 300                ; kernel work (e.g. pull packet metadata)
    movi r1, REQ
    st r1, 0, r5            ; publish the request
    start EXT_VTID          ; direct hand-off to the sandbox
    movi r2, VERDICT
    monitor r2
    movi r3, EDP
    monitor r3              ; also watch for a sandbox crash
    mwait
    ld r4, r3, 0
    bne r4, r0, ext_crashed
    addi r5, r5, 1
    movi r6, ROUNDS
    blt r5, r6, kernel_loop
    halt
ext_crashed:
    movi r7, 1              ; record: sandbox contained
    halt
"""

_EXT_ASM = """
ext_loop:
    movi r1, REQ
    ld r2, r1, 0            ; the request id
    work 150                ; filter computation
    movi r3, BAD
    beq r2, r3, go_rogue
    movi r4, VERDICT
    st r4, 0, r2            ; verdict write wakes the kernel
    stop EXT_SELF_VTID      ; yield back until the next request
    jmp ext_loop
go_rogue:
    privop 7                ; NOT ALLOWED: faults, writes descriptor
    halt
"""


def main() -> None:
    machine = build_machine()
    req = machine.alloc("request", 64)
    verdict = machine.alloc("verdict", 64)
    edp = machine.alloc("ext-edp", 64)

    # The extension's own TDT row lets it stop itself and nothing else;
    # it has no entry for the kernel, so it cannot touch it.
    ext_tdt = machine.build_tdt("ext-tdt", {0: (EXT_PTID, Permission.STOP)})
    symbols = {
        "REQ": req.base, "VERDICT": verdict.base, "EDP": edp.base,
        "EXT_VTID": EXT_PTID, "EXT_SELF_VTID": 0,
        "ROUNDS": ROUNDS, "BAD": MISBEHAVE_AT,
    }
    machine.load_asm(KERNEL_PTID, _KERNEL_ASM, symbols=symbols,
                     supervisor=True, name="kernel")
    machine.load_asm(EXT_PTID, _EXT_ASM, symbols=symbols,
                     supervisor=False, tdtr=ext_tdt.base, edp=edp.base,
                     name="extension")
    machine.boot(KERNEL_PTID)
    machine.run(until=1_000_000)
    machine.check()

    kernel = machine.thread(KERNEL_PTID)
    served = machine.memory.load(verdict.base)
    print("== sandboxed extension (eBPF-style) ==")
    print(f"filter rounds served      : {kernel.arch.read('r5')}")
    print(f"last verdict              : {served}")
    print(f"sandbox crash contained?  : {bool(kernel.arch.read('r7'))}")
    if descriptor_present(machine.memory, edp.base):
        descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
        print(f"extension fault           : {descriptor.kind.name} "
              f"at pc={descriptor.pc}")
    print(f"kernel still alive?       : {kernel.finished} "
          f"(halted cleanly, not crashed)")
    print()
    print('"Quick hand-offs between hardware threads allow isolation '
          'without loss of performance."')


if __name__ == "__main__":
    main()
