#!/usr/bin/env python
"""Generate the reference docs under docs/ from the source of truth.

- ``docs/isa.md`` -- the instruction set, from :data:`repro.isa.OPS`;
- ``docs/cost-model.md`` -- every latency constant with its value and
  the paper sentence that motivates it, from
  :class:`repro.arch.costs.CostModel`;
- ``docs/experiments.md`` -- the experiment registry with anchors.

``tests/test_docs_fresh.py`` regenerates these in memory and fails if
the committed files drifted from the code.

Run:  python examples/generate_docs.py
"""

import dataclasses
import pathlib

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"


def isa_markdown() -> str:
    from repro.isa.instructions import OPS

    lines = [
        "# The simulated ISA",
        "",
        "A small RISC-like base plus the seven instructions of the",
        "paper's Section 3.1. Operand kinds: `R` register, `I`",
        "immediate, `RI` either, `N` register *name* (for rpull/rpush/",
        "csr), `L` label. Latencies are base issue cycles; memory and",
        "thread-management costs are layered on from the CostModel.",
        "",
        "| opcode | operands | latency | privileged | description |",
        "|---|---|---|---|---|",
    ]
    for spec in OPS.values():
        lines.append(
            f"| `{spec.name}` | {' '.join(spec.operands) or '-'} "
            f"| {spec.latency} | {'yes' if spec.privileged else ''} "
            f"| {spec.description} |")
    lines.append("")
    return "\n".join(lines)


def cost_model_markdown() -> str:
    from repro.arch.costs import CostModel

    model = CostModel()
    lines = [
        "# The cost model",
        "",
        "Every latency constant, in cycles at the paper's reference",
        "3 GHz clock (3 cycles = 1 ns). The field-by-field rationale,",
        "with paper quotations, lives in the docstring of",
        "`repro.arch.costs.CostModel`; this table records the defaults.",
        "",
        "| constant | default (cycles) | ns @3GHz |",
        "|---|---|---|",
    ]
    for field in dataclasses.fields(model):
        value = getattr(model, field.name)
        lines.append(f"| `{field.name}` | {value} | {value / 3:.1f} |")
    lines += [
        "",
        "Derived path costs (see the class for the formulas):",
        "",
        "| path | cycles |",
        "|---|---|",
        f"| `baseline_io_wakeup_cycles()` "
        f"| {model.baseline_io_wakeup_cycles()} |",
        f"| `baseline_io_wakeup_cycles(cross_core=True)` "
        f"| {model.baseline_io_wakeup_cycles(cross_core=True)} |",
        f"| `hw_wakeup_cycles('rf')` | {model.hw_wakeup_cycles('rf')} |",
        f"| `hw_wakeup_cycles('l3')` | {model.hw_wakeup_cycles('l3')} |",
        f"| `sw_switch_total_cycles()` | {model.sw_switch_total_cycles()} |",
        f"| `syscall_sync_cycles()` | {model.syscall_sync_cycles()} |",
        f"| `syscall_hw_thread_cycles()` "
        f"| {model.syscall_hw_thread_cycles()} |",
        f"| `vm_exit_hw_thread_cycles()` "
        f"| {model.vm_exit_hw_thread_cycles()} |",
        "",
    ]
    return "\n".join(lines)


def experiments_markdown() -> str:
    from repro.experiments import all_experiments

    lines = [
        "# Experiment registry",
        "",
        "Run any of these with `python -m repro run <id>`; see",
        "EXPERIMENTS.md for the measured tables and claim records.",
        "",
        "| id | title | paper anchor |",
        "|---|---|---|",
    ]
    for experiment in all_experiments():
        lines.append(f"| {experiment.experiment_id} | {experiment.title} "
                     f"| {experiment.paper_anchor} |")
    lines += [
        "",
        "## Running the evaluation",
        "",
        "`python -m repro evaluate [--quick] [--markdown] [--parallel N]`",
        "(or `python examples/run_evaluation.py` with the same flags)",
        "runs every experiment. `--parallel N` fans them across N worker",
        "processes; each experiment builds its own machine from a fixed",
        "seed, so the output is byte-identical to a serial run",
        "(`--parallel 0` uses one worker per CPU).",
        "",
        "## Fast-forward invariants",
        "",
        "The simulator skips busy cycles instead of stepping them",
        "(`HWCore._fast_forward`): when every issueable hardware thread",
        "is mid-`work`, the core advances the clock in one jump, capped",
        "by the earliest of (a) a work burst ending, (b) a busy thread",
        "re-joining the issue pool, (c) the next pending engine event,",
        "and (d) the `run(until=...)` horizon. Under slot contention the",
        "jump is restricted to whole round-robin rotations, which pick",
        "every thread the same number of times and leave the rotation",
        "pointer unchanged. The batch replays per-round accounting",
        "exactly -- retired instructions, per-thread busy cycles, issue",
        "rounds, storage recency order, policy virtual time, trace",
        "stream, and the final clock are identical to naive stepping;",
        "only `events_processed` drops (that is the point). Set",
        "`REPRO_NO_FASTFORWARD=1` (or `MachineConfig.fast_forward=False`)",
        "to force naive stepping; `tests/test_fastforward_equivalence.py`",
        "diffs the two modes on contended SMT workloads with monitors,",
        "DMA wakeups, and exceptions.",
        "",
    ]
    return "\n".join(lines)


GENERATORS = {
    "isa.md": isa_markdown,
    "cost-model.md": cost_model_markdown,
    "experiments.md": experiments_markdown,
}


def main() -> None:
    DOCS.mkdir(exist_ok=True)
    for name, generate in GENERATORS.items():
        path = DOCS / name
        path.write_text(generate())
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
