#!/usr/bin/env python
"""Generate the reference docs under docs/ from the source of truth.

- ``docs/isa.md`` -- the instruction set, from :data:`repro.isa.OPS`;
- ``docs/cost-model.md`` -- every latency constant with its value and
  the paper sentence that motivates it, from
  :class:`repro.arch.costs.CostModel`;
- ``docs/experiments.md`` -- the experiment registry with anchors;
- ``docs/observability.md`` -- the instrumentation layer: metric
  namespace (from :data:`repro.obs.snapshot.NAMESPACE`), timeline span
  states, the cycle-attribution buckets, and the Perfetto workflow;
- ``docs/cluster.md`` -- the multi-machine cluster simulation:
  configuration knobs (from :class:`repro.cluster.ClusterConfig`),
  balancing policies, server designs, and the E14 workflow;
- ``docs/backends.md`` -- the pluggable server-backend protocol: the
  registry (from :data:`repro.backends.BACKENDS`), what each fidelity
  level executes, and the E15 agreement check;
- ``docs/coherence.md`` -- the coherence subsystem: the directory
  watch-bus model (knobs from :class:`repro.arch.costs.CostModel`),
  remote-mailbox mwait, the sharded TDT, and the E17 workflow.

``tests/test_docs_fresh.py`` regenerates these in memory and fails if
the committed files drifted from the code.

Run:  python examples/generate_docs.py
"""

import dataclasses
import pathlib

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"


def isa_markdown() -> str:
    from repro.isa.instructions import OPS

    lines = [
        "# The simulated ISA",
        "",
        "A small RISC-like base plus the seven instructions of the",
        "paper's Section 3.1. Operand kinds: `R` register, `I`",
        "immediate, `RI` either, `N` register *name* (for rpull/rpush/",
        "csr), `L` label. Latencies are base issue cycles; memory and",
        "thread-management costs are layered on from the CostModel.",
        "",
        "| opcode | operands | latency | privileged | description |",
        "|---|---|---|---|---|",
    ]
    for spec in OPS.values():
        lines.append(
            f"| `{spec.name}` | {' '.join(spec.operands) or '-'} "
            f"| {spec.latency} | {'yes' if spec.privileged else ''} "
            f"| {spec.description} |")
    from repro.isa.decode import FUSABLE_OPS
    fusable = ", ".join(f"`{name}`" for name in sorted(FUSABLE_OPS))
    lines += [
        "",
        "## Pre-decoded handler chains",
        "",
        "The interpreter does not re-parse `Instruction` tuples on the",
        "hot path. The first time a `Program` runs on a core,",
        "`repro.isa.decode` lowers it to a `DecodedProgram`: one bound",
        "handler per instruction with operands resolved, labels turned",
        "into indices, and the static issue latency folded in, cached",
        "on the `Program` and shared by every hardware thread that runs",
        "it. `HWCore` then dispatches through the decoded table instead",
        "of the opcode `match`. Decoding is *behaviorally invisible*:",
        "every experiment table is byte-identical with it on or off",
        "(the `predecode-identity` CI job diffs E09/E15 under both",
        "engine queues), and E18 measures the mechanisms directly.",
        "",
        "### Superinstruction fusion",
        "",
        "Straight-line runs (length >= 2) of pure register ALU ops --",
        f"{fusable} --",
        "are additionally fused into one superinstruction that retires",
        "the whole run in a single engine event, charging the summed",
        "latency. A fused run only executes from its *first* index; a",
        "jump into the middle of a run falls back to the per-",
        "instruction handlers, and anything that can observe",
        "mid-run state (stops, faults) rewinds via an undo log so",
        "architectural state is exactly what naive stepping produces.",
        "",
        "### Turning it off",
        "",
        "`build_machine(predecode=False)` or `REPRO_NO_PREDECODE=1`",
        "forces the naive interpreter (the env var is how CI proves",
        "identity). Attaching an instruction tracer also falls back to",
        "naive stepping, since tracing wants one event per instruction.",
        "`benchmarks/bench_isa_dispatch.py` records the wall-clock win",
        "per loop shape in `BENCH_engine.json` (`isa_dispatch`).",
        "",
        "## Weighted round-robin issue",
        "",
        "`build_machine(issue_policy='wrr')` selects a credit-based",
        "weighted round-robin arbiter (Section 4's \"hardware support",
        "for thread priorities\" without preemption): each hardware",
        "thread holds an integer credit balance, a ring walk spends one",
        "credit per issue, and balances refill by `weight` once every",
        "ring pass. Selection is O(1) per issued instruction, shares",
        "converge to exact weight proportions under contention (E18",
        "table 1), and at uniform weights the pick stream -- including",
        "the stored ring pointer -- is identical to plain `rr`. Set",
        "weights with `core.set_priority(ptid, weight)`.",
        "",
    ]
    return "\n".join(lines)


def cost_model_markdown() -> str:
    from repro.arch.costs import CostModel

    model = CostModel()
    lines = [
        "# The cost model",
        "",
        "Every latency constant, in cycles at the paper's reference",
        "3 GHz clock (3 cycles = 1 ns). The field-by-field rationale,",
        "with paper quotations, lives in the docstring of",
        "`repro.arch.costs.CostModel`; this table records the defaults.",
        "",
        "| constant | default (cycles) | ns @3GHz |",
        "|---|---|---|",
    ]
    for field in dataclasses.fields(model):
        value = getattr(model, field.name)
        lines.append(f"| `{field.name}` | {value} | {value / 3:.1f} |")
    lines += [
        "",
        "Derived path costs (see the class for the formulas):",
        "",
        "| path | cycles |",
        "|---|---|",
        f"| `baseline_io_wakeup_cycles()` "
        f"| {model.baseline_io_wakeup_cycles()} |",
        f"| `baseline_io_wakeup_cycles(cross_core=True)` "
        f"| {model.baseline_io_wakeup_cycles(cross_core=True)} |",
        f"| `hw_wakeup_cycles('rf')` | {model.hw_wakeup_cycles('rf')} |",
        f"| `hw_wakeup_cycles('l3')` | {model.hw_wakeup_cycles('l3')} |",
        f"| `sw_switch_total_cycles()` | {model.sw_switch_total_cycles()} |",
        f"| `syscall_sync_cycles()` | {model.syscall_sync_cycles()} |",
        f"| `syscall_hw_thread_cycles()` "
        f"| {model.syscall_hw_thread_cycles()} |",
        f"| `vm_exit_hw_thread_cycles()` "
        f"| {model.vm_exit_hw_thread_cycles()} |",
        "",
    ]
    return "\n".join(lines)


def experiments_markdown() -> str:
    from repro.experiments import all_experiments

    lines = [
        "# Experiment registry",
        "",
        "Run any of these with `python -m repro run <id>`; see",
        "EXPERIMENTS.md for the measured tables and claim records.",
        "",
        "| id | title | paper anchor |",
        "|---|---|---|",
    ]
    for experiment in all_experiments():
        lines.append(f"| {experiment.experiment_id} | {experiment.title} "
                     f"| {experiment.paper_anchor} |")
    lines += [
        "",
        "## Running the evaluation",
        "",
        "`python -m repro evaluate [--quick] [--markdown] [--parallel N]`",
        "(or `python examples/run_evaluation.py` with the same flags)",
        "runs every experiment. `--parallel N` fans them across N worker",
        "processes; each experiment builds its own machine from a fixed",
        "seed, so the output is byte-identical to a serial run",
        "(`--parallel 0` uses one worker per CPU).",
        "",
        "## Fast-forward invariants",
        "",
        "The simulator skips busy cycles instead of stepping them",
        "(`HWCore._plan_fast_forward`/`_apply_fast_forward`): when every",
        "issueable hardware thread is mid-`work`, the core advances the",
        "clock in one jump, capped by the earliest of (a) a work burst",
        "ending, (b) a busy thread re-joining the issue pool, (c) the",
        "next pending *foreign* engine event (other cores' per-cycle",
        "resumes live in the engine's step lane and do not count), and",
        "(d) the `run(until=...)` horizon. Under slot contention the",
        "jump is restricted to whole round-robin rotations, which pick",
        "every thread the same number of times and leave the rotation",
        "pointer unchanged. When another component could wake mid-jump",
        "(multi-core machines, cluster nodes), the batch is armed as an",
        "interruptible sleep on the core's wake signal and re-planned at",
        "whatever point it actually resumed. The batch replays per-round",
        "accounting exactly -- retired instructions, per-thread busy",
        "cycles, issue rounds, storage recency order, policy virtual",
        "time, trace stream, and the final clock are identical to naive",
        "stepping; only `events_processed` drops (that is the point).",
        "Set `REPRO_NO_FASTFORWARD=1` (or",
        "`MachineConfig.fast_forward=False`) to force naive stepping;",
        "`tests/test_fastforward_equivalence.py` diffs the two modes on",
        "contended SMT workloads with monitors, DMA wakeups, exceptions,",
        "and cross-core stores that land mid-batch.",
        "",
    ]
    return "\n".join(lines)


def observability_markdown() -> str:
    from repro.obs.metrics import (
        HISTOGRAM_LINEAR_BITS,
        HISTOGRAM_SUBBUCKET_BITS,
    )
    from repro.obs.profile import BUCKETS
    from repro.obs.snapshot import NAMESPACE
    from repro.obs.spans import COMPONENTS as SPAN_COMPONENTS
    from repro.obs.spans import DEFAULT_TOP_K as SPAN_DEFAULT_TOP_K
    from repro.obs.timeline import ThreadState

    lines = [
        "# Observability",
        "",
        "Instrumentation is **off by default and zero-cost when off**:",
        "the issue loop selects an entirely uninstrumented body at",
        "startup, and everything else guards on one attribute-is-None",
        "check. `BENCH_engine.json` records the measured disabled-mode",
        "overhead (`instrumentation.disabled_overhead_pct`, gated <3%",
        "in CI).",
        "",
        "Turn it on per machine with `build_machine(instrument=True)`,",
        "or for a whole region with a session -- every machine built",
        "inside instruments itself, and out-of-machine components",
        "(kernel I/O and queueing servers, cache hierarchies, NICs)",
        "register as metric sources and timeline tracks:",
        "",
        "```python",
        "import repro.obs as obs",
        "",
        'with obs.session("E03") as sess:',
        "    result = experiment.run(quick=True)",
        "snapshot = sess.snapshot()      # JSON-ready metrics + profiles",
        "trace = sess.chrome_trace()     # open in ui.perfetto.dev",
        "```",
        "",
        "From the CLI:",
        "",
        "```",
        "python -m repro run E03 --trace out.json --metrics out-metrics.json",
        "python -m repro profile E03",
        "python -m repro evaluate --quick --metrics metrics-dir/",
        "```",
        "",
        "## Metric namespace",
        "",
        "Hierarchical dotted names; these prefixes are reserved:",
        "",
        "| prefix | meaning |",
        "|---|---|",
    ]
    for prefix, meaning in NAMESPACE.items():
        lines.append(f"| `{prefix}` | {meaning} |")
    lines += [
        "",
        "Counters add across machines; gauges are last-write-wins;",
        "histograms are log-linear (HdrHistogram-style): exact below",
        f"2^{HISTOGRAM_LINEAR_BITS}, then 2^{HISTOGRAM_SUBBUCKET_BITS}",
        "sub-buckets per power of two, so percentile error is bounded",
        f"at 2^-{HISTOGRAM_SUBBUCKET_BITS} (6.25%) relative with",
        "constant memory.",
        "",
        "## Timeline span states",
        "",
        "Per-(core, ptid) spans, emitted from the simulator's own state",
        "chokepoints so the timeline cannot drift from the simulation:",
        "",
        "| state | meaning |",
        "|---|---|",
    ]
    descriptions = {
        ThreadState.RUNNING: "RUNNABLE: competing for issue slots",
        ThreadState.MWAIT: "WAITING: parked on a monitor address",
        ThreadState.STOPPED: "DISABLED: stopped / not yet started",
        ThreadState.SPILLED: "state demoted out of the register file",
    }
    for state in ThreadState:
        lines.append(f"| `{state.value}` | {descriptions[state]} |")
    lines += [
        "",
        "In the Perfetto export each core is a *process* and each ptid",
        "a *thread*; session-level component tracks (I/O and queueing",
        "servers) appear as their own named processes. Timestamps are",
        "microseconds at the machine's configured frequency; the exact",
        "cycle stamps ride along in `args`.",
        "",
        "## Cycle attribution",
        "",
        "`python -m repro profile <id>` buckets every cycle of every",
        "core into exactly one of:",
        "",
    ]
    lines += [f"- `{bucket}`" for bucket in BUCKETS]
    lines += [
        "",
        "The invariant -- enforced by `CoreProfile.snapshot` and checked",
        "on every experiment in `tests/test_obs_profile.py` -- is that",
        "the buckets sum *exactly* to `engine.now` for every core.",
        "",
        "## Tracing",
        "",
        "`repro.obs.spans` adds per-request distributed tracing over",
        "the cluster layer: every request becomes a span tree -- client",
        "send, balancer pick, fabric hop, node admission, backend",
        "service, reply hop, plus hedged-attempt siblings -- and the",
        "tree's **critical path** decomposes the end-to-end latency",
        "*exactly* into seven components:",
        "",
    ]
    lines += [f"- `{name}`" for name in SPAN_COMPONENTS]
    lines += [
        "",
        "The conservation invariant (a hypothesis property test in",
        "`tests/test_spans.py` pins it): for every completed request",
        "the components are non-negative and sum to `settled - arrived`,",
        "cycle for cycle. `queue` is the node-phase residual -- backlog,",
        "PS/FIFO sharing, and (isa backend) the machine-charged wakeup/",
        "dispatch cycles -- and every other component is a lower bound",
        "the simulation itself enforces.",
        "",
        "Sampling is tail-based: full trees are retained only for the",
        "`top_k` slowest requests (default",
        f"{SPAN_DEFAULT_TOP_K}) plus a deterministic",
        "1-in-`sample_every` sample by request id (0 disables); every",
        "completed request still feeds the per-component histograms and",
        "the exact per-request decomposition behind",
        "`SpanStore.percentile_request`. Tracing is ambient and",
        "zero-cost when off -- every emitter captures the active store",
        "at construction and guards on one attribute-is-None check --",
        "and PDES-aware: shard workers record node fragments locally",
        "and ship them home, so a sharded run reproduces the",
        "single-engine span payload byte for byte.",
        "",
        "```python",
        "import repro.obs.spans as spans",
        "from repro.cluster import ClusterConfig, run_cluster",
        "",
        "with spans.tracing(top_k=8) as store:",
        "    run_cluster(config, seed=7)",
        "p99 = store.percentile_request(99.0)   # exact decomposition",
        "trees = store.exemplars()              # the retained span trees",
        "```",
        "",
        "From the CLI:",
        "",
        "```",
        "python -m repro trace --design sw-threads --nodes 8 --top 5",
        "python -m repro cluster --design all --span-trace spans.json",
        "python -m repro run E16 --quick --spans trees.json \\",
        "    --span-trace spans.trace.json",
        "python -m repro evaluate --quick --spans spans-dir/",
        "```",
        "",
        "`trace` pretty-prints the K slowest trees with per-component",
        "percentages; the `--span-trace` files are Perfetto/Chrome",
        "trace-event JSON where each request is a process whose",
        "`critical path` lane tiles `[start, end]` exactly. E16 (tail",
        "anatomy) is the experiment built on this layer: it dissects",
        "the p50-vs-p99 critical paths per design and ties the growing",
        "sw-threads tail to the switch-tax component plus the queueing",
        "it induces.",
        "",
    ]
    return "\n".join(lines)


def cluster_markdown() -> str:
    from repro.cluster import DESIGNS, ClusterConfig
    from repro.cluster.balancer import POLICIES
    from repro.distributed.rpc import CROWD_CACHE_CAP, CROWD_UNIT

    config = ClusterConfig()
    lines = [
        "# The cluster simulation",
        "",
        "`repro.cluster` composes many RPC server nodes -- each running",
        "one of the paper's three server designs -- into a simulated",
        "datacenter on a single discrete-event engine: a network fabric",
        "with per-link latency and loss, a load balancer, fan-out with",
        "the cluster response taken as the *slowest* shard, and hedged",
        "requests. It is the substrate for experiment E14 (the",
        "transition tax at scale) and the `python -m repro cluster` CLI",
        "verb.",
        "",
        "```python",
        "from repro.cluster import ClusterConfig, DESIGNS, run_cluster",
        "",
        "config = ClusterConfig(nodes=16, design=DESIGNS['sw-threads'],",
        "                       policy='p2c', fanout=8, load=0.3)",
        "result = run_cluster(config, seed=0xC0FFEE)",
        "print(result.summary['p99'], result.summary['conserved'])",
        "```",
        "",
        "## Configuration",
        "",
        "| field | default | meaning |",
        "|---|---|---|",
    ]
    meanings = {
        "nodes": "machines in the cluster",
        "design": "per-node server design (see below)",
        "policy": "shard placement policy (see below)",
        "fanout": "shards per request; the response is the slowest",
        "load": "offered load per node of the base service",
        "mean_service_cycles": "mean CPU demand of one shard",
        "segments": "CPU bursts per shard, separated by remote calls",
        "rtt_cycles": "mid-request remote-call round trip, per gap",
        "requests": "open-loop arrivals to issue",
        "cores_per_node": "CPU capacity of each node",
        "queue_limit": "per-node admission bound (None = unbounded)",
        "hedge_after": "cycles before a backup shard is sent "
                       "(None = no hedging)",
        "threads_per_peer": "resident worker threads each cluster peer "
                            "keeps on every node (fan-in pool)",
        "link": "network link spec: base + jitter cycles, drop "
                "probability",
        "horizon_factor": "run horizon in mean-arrival-gap multiples",
        "backend": "server backend per node: `model` (behavioral) or "
                   "`isa` (full machine); see docs/backends.md",
        "probe_delay_cycles": "jsq/p2c load-signal staleness: in-flight "
                              "counts come from a snapshot at most this "
                              "old (0 = exact oracle)",
        "racks": "nodes are striped over racks as `node_id % racks`; "
                 "the client sits in rack 0",
        "cross_rack_link": "link spec for client<->other-rack messages "
                           "(None = same as `link`)",
        "placement": "`any` spreads shards cluster-wide; `same-rack` "
                     "keeps them in the client's rack",
        "shards": "engine shards: partition the nodes over this many "
                  "worker engines (parallel-in-time PDES; 1 = classic "
                  "single-engine run)",
        "coherence": "watch-bus coherence on each node's machine: `off` "
                     "(flat free bus), `directory` (priced MSI "
                     "directory), `null` (directory at zero cost); "
                     "requires `backend='isa'`; see docs/coherence.md",
    }
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        shown = getattr(value, "name", value)
        lines.append(f"| `{field.name}` | `{shown}` "
                     f"| {meanings[field.name]} |")
    lines += [
        "",
        "## Server designs",
        "",
        "| design | discipline | crowd-sensitive |",
        "|---|---|---|",
    ]
    for name, design in DESIGNS.items():
        sensitive = "yes" if name == "sw-threads" else "no"
        lines.append(f"| `{name}` | {design.discipline} | {sensitive} |")
    lines += [
        "",
        "A node keeps `threads_per_peer x nodes` software threads",
        "resident (the thread-per-connection fan-in pool). Only the",
        "sw-threads design pays for that crowd: its per-transition",
        "overhead grows with the runqueue (log-scaled per",
        f"{CROWD_UNIT} resident threads) and with cache pollution",
        f"(linear, capped at {CROWD_CACHE_CAP} threads). Hardware",
        "threads hold per-context state and the event loop runs one",
        "stack, so neither pays -- this is how the transition tax",
        "grows with cluster size in E14 while hw-threads stays flat.",
        "",
        "## Balancing policies",
        "",
        "| policy | placement |",
        "|---|---|",
        "| `random` | uniform over nodes (Poisson splitting) |",
        "| `round-robin` | cyclic (Erlang-smoothed per-node arrivals) |",
        "| `jsq` | join the shortest queue (full load information) |",
        "| `p2c` | power of two choices: best of two random nodes |",
    ]
    assert set(POLICIES) == {"random", "round-robin", "jsq", "p2c"}
    lines += [
        "",
        "## Determinism",
        "",
        "Every draw comes from named RNG streams keyed off the",
        "*workload* (node count, policy, fanout, load -- not the server",
        "design), so hw-threads and sw-threads clusters face identical",
        "arrivals, service draws, and placements: common random",
        "numbers. The same `(config, seed)` pair is byte-identical",
        "across processes, which is what lets `evaluate --parallel`",
        "reproduce serial snapshots exactly.",
        "",
        "Conservation is exact and checked on every run:",
        "`issued == completed + dropped + in_flight` at the service,",
        "`admitted == completed + in_flight` per node, and every shard",
        "attempt is accounted to exactly one of completed, on-the-wire,",
        "wire-dropped, rejected, in-service, or hedge-superseded.",
        "",
        "## Parallel-in-time sharding (conservative PDES)",
        "",
        "`shards=N` partitions the nodes over `N` worker engines",
        "(`node_id % N`, the same striping racks use) and runs them as",
        "a conservative parallel discrete-event simulation",
        "(`repro.cluster.pdes`). The client -- balancer, fabric,",
        "front-end, workload -- stays on the coordinator engine and",
        "talks to per-node proxies; requests cross to workers as",
        "timestamped messages over pipes.",
        "",
        "Safety comes from *lookahead*: every client->node message",
        "pays at least the minimum link base latency on the wire",
        "(`request_lookahead`), so a worker that has seen all messages",
        "sent by time `T` can run through `T + lookahead` without risk",
        "-- the paper's own asymmetry (cross-machine communication",
        "costs orders of magnitude more than an intra-machine context",
        "switch) recast as a synchronization guarantee. State-free",
        "routing (`random`, `round-robin`, no hedging) upgrades to a",
        "decoupled pipeline: a generation pass streams the outbound",
        "request sequence ahead of the workers in adaptive windows,",
        "and the client replays responses behind them. Load-aware",
        "routing (`jsq`, `p2c`) and hedging fall back to lockstep",
        "lookahead windows.",
        "",
        "Sharding is *invisible in the results*: every shard replays",
        "exactly the RNG draws its nodes and links would have made on",
        "the shared engine (per-directed-link streams), so the",
        "summary, the latency quantiles, and the obs snapshot are",
        "byte-identical to `shards=1` -- `tests/test_pdes.py` pins",
        "this down, and a mirror cross-check audits every run. Worker",
        "transports: `process` (real worker processes, the default)",
        "and `inline` (same-process debug mode). `run_sharded` reports",
        "the protocol audit in `result.service.pdes` (mode, windows,",
        "lookahead, minimum observed slack, spin/park counts).",
        "",
        "## CLI",
        "",
        "```",
        "python -m repro cluster --nodes 16 --design all --fanout 8 \\",
        "    --policy p2c --load 0.3",
        "python -m repro cluster --nodes 8 --drop-prob 0.01 \\",
        "    --hedge-after 160000 --json",
        "python -m repro cluster --nodes 32 --shards 4 \\",
        "    --shard-transport process   # PDES, same bytes out",
        "python -m repro run E14 --quick   # the full tail-at-scale story",
        "```",
        "",
        "`examples/cluster_service.py` walks the same pieces with",
        "commentary.",
        "",
    ]
    return "\n".join(lines)


def backends_markdown() -> str:
    from repro.backends import backend_names
    from repro.backends.machine import DEFAULT_SLOTS
    from repro.cluster import DESIGNS

    lines = [
        "# Server backends",
        "",
        "The cluster layer programs against the `ServerBackend`",
        "protocol (`repro.backends.base`): submit a segmented request",
        "now, call `on_done` at its completion, account CPU busy",
        "cycles, record per-request latency. Implementations register",
        "in the string-keyed `repro.backends.BACKENDS` table and are",
        "selected per run with `ClusterConfig(backend=...)` or",
        "`python -m repro cluster --backend ...`; an unknown name",
        "raises a `ConfigError` listing the registered alternatives.",
        "",
        "| backend | what executes | cost of fidelity |",
        "|---|---|---|",
        "| `model` | behavioral `RpcServerModel`: queueing servers "
        "(PS or FIFO) plus the analytic per-transition cost model "
        "| negligible -- scales to E14's 32-node sweeps |",
        "| `isa` | `MachineBackend`: one ISA-level `Machine` per node "
        "on the shared engine, thread-per-request assembly, "
        "monitor/mwait blocking on remote calls | every guest cycle "
        "is simulated -- keep clusters small |",
        "",
        "## What the ISA backend runs",
        "",
        "Each admitted request is assembled into straight-line blocking",
        "code and bound to one of the node's hardware-thread slots",
        f"({DEFAULT_SLOTS} per node; overflow queues FIFO):",
        "",
        "```asm",
        "    work <segment 0>",
        "    movi r1, REPLY",
        "    monitor r1        ; armed before the call: no lost wakeup",
        "    movi r2, REQ",
        "    movi r3, 1",
        "    st r2, 0, r3      ; issue the remote call",
        "    mwait             ; simple blocking semantics",
        "    work <segment 1>",
        "    ...",
        "    st r4, 0, r5      ; DONE mailbox -> completion callback",
        "    halt",
        "```",
        "",
        "Per design:",
        "",
    ]
    assert set(DESIGNS) == {"hw-threads", "sw-threads", "event-loop"}
    lines += [
        "- **hw-threads** -- thread-per-request with *no* analytic",
        "  overhead: monitor wakeup cost and storage-tier start latency",
        "  are charged by the simulated hardware itself;",
        "- **sw-threads** -- the same program, but each segment carries",
        "  the software transition tax (scheduler + double switch +",
        "  crowd-scaled cache pollution, frozen at the crowding level",
        "  observed at submit) as extra `work` cycles the core really",
        "  burns;",
        "- **event-loop** -- a single worker ptid runs segments to",
        "  completion from a FIFO continuation queue; head-of-line",
        "  blocking is physical, since the worker cannot be reloaded",
        "  until the running segment halts.",
        "",
        "The node machine issues one instruction per cycle",
        "(`smt_width=1`) round-robin over runnable slots -- processor",
        "sharing at one-cycle granularity, matching the behavioral PS",
        "discipline.",
        "",
        "## Common random numbers across fidelity levels",
        "",
        "`ClusterConfig.workload_label()` excludes the backend (and the",
        "design), so `model` and `isa` clusters face identical arrival",
        "times, service draws, placements, and network jitter. A",
        "backend comparison therefore measures the fidelity jump",
        "itself, nothing else. The default backend also keeps its exact",
        "historical stream labels: the refactor is byte-identical for",
        "every pre-existing configuration.",
        "",
        "## The agreement check (E15)",
        "",
        "`python -m repro run E15` replays the same low-load cluster",
        "workload against both backends and checks that (a) per-design",
        "cluster p99 agrees within 2x across the fidelity jump, (b) the",
        "sw/hw tail ordering -- the paper's headline -- survives it,",
        "and (c) conservation holds on both. See EXPERIMENTS.md for the",
        "measured tables.",
        "",
        "## Registering a backend",
        "",
        "```python",
        "from repro.backends import BACKENDS",
        "",
        "def build_mine(engine, design, costs, cores, resident_threads):",
        "    return MyBackend(...)   # satisfies ServerBackend",
        "",
        'BACKENDS["mine"] = build_mine',
        "```",
        "",
        f"Registered today: {', '.join(f'`{n}`' for n in backend_names())}.",
        "",
    ]
    return "\n".join(lines)


def engine_markdown() -> str:
    from repro.kernel.sched import ProcessorSharingServer
    from repro.sim.engine import (
        _COMPACT_MIN_BUCKET,
        _COMPACT_MIN_QUEUE,
        DEFAULT_QUEUE,
        QUEUE_ENV,
    )

    lines = [
        "# The discrete-event engine",
        "",
        "One engine drives everything -- behavioral queueing models,",
        "ISA machines, and whole clusters share a single event queue",
        "with deterministic `(time, insertion-seq)` dispatch order.",
        "The public surface is `at`/`after` (returning a cancellable",
        "`ScheduledCall`), `run`/`run_until_idle`/`step`, and",
        "`next_event_time`.",
        "",
        "## Two backing stores: wheel vs heap",
        "",
        "The engine has two interchangeable backing stores behind that",
        "API, selected at construction:",
        "",
        "- **wheel** (`WheelEngine`, the default): a calendar queue.",
        "  Events live in per-timestamp buckets (append order *is* seq",
        "  order) with a heap over the distinct timestamps; dispatch",
        "  walks the earliest bucket by cursor, so same-time events",
        "  scheduled by callbacks are picked up in order without any",
        "  re-heapification. Cancellation is O(1) tombstoning: the",
        "  bucket keeps a dead counter, compacts itself once more than",
        f"  half of at least {_COMPACT_MIN_BUCKET} entries are dead, and",
        "  a fully-cancelled bucket is freed immediately (its timestamp",
        "  goes stale in the heap and is skipped on pop). The unbounded",
        "  and horizon-bounded drains are inlined -- one bucket walk per",
        "  event, no per-event function call -- which is where the",
        "  cluster experiments spend their lives. The tombstone table",
        "  stays *empty* on a cancellation-free run (compaction drops",
        "  keys rather than zeroing them), so the drains' consume path",
        "  skips tombstone bookkeeping entirely -- a truthiness test --",
        "  until the first cancellation actually happens.",
        "- **heap** (`HeapEngine`, the reference): one binary heap of",
        "  `(time, seq, call)` with lazy compaction once cancelled",
        "  entries outnumber live ones (and the queue is at least",
        f"  {_COMPACT_MIN_QUEUE} long). Simpler to audit; kept as the",
        "  cross-check implementation.",
        "",
        "Both stores dispatch in exactly the same global order, so",
        "**every experiment table is byte-identical under either** --",
        "`tests/test_experiments.py::TestEngineQueueIdentity` and the",
        "parametrized serial/parallel identity test enforce that on the",
        "queueing-heavy experiments (E09/E14/E15). On the cluster",
        "workloads the two are within a few percent of each other; the",
        "wheel's structural win is O(1) cancellation and bucket-local",
        "same-timestamp handling, the heap's is simplicity. Switch with",
        f"`EngineConfig(queue=...)` or the `{QUEUE_ENV}` environment",
        f"variable (`heap`/`wheel`; default `{DEFAULT_QUEUE}`):",
        "",
        "```python",
        "from repro.sim.engine import Engine, EngineConfig",
        "",
        "engine = Engine(EngineConfig(queue='heap'))",
        "assert engine.queue_kind == 'heap'",
        "```",
        "",
        "## The step lane",
        "",
        "ISA cores resume their issue loops every simulated cycle. Those",
        "resumes are scheduled through `at_step`/`after_step` into a",
        "separate *step lane* that merges into dispatch by the same",
        "`(time, seq)` key but is excluded from",
        "`next_foreign_event_time()` -- the horizon the busy-cycle",
        "fast-forward jumps to. A core grinding cycle-by-cycle is not an",
        "external deadline for another core's batch, which is what lets",
        "multi-machine clusters of ISA backends fast-forward at all",
        "(docs/backends.md, E15).",
        "",
        "## Cancellation-free completions",
        "",
        "The timer-heavy client of the engine is the processor-sharing",
        "server (`kernel/sched.py`). Its completion timer is",
        "*lazy-deadline*: an arrival can only delay the head job's",
        "completion, so the armed timer is kept and re-validated when it",
        "fires -- the common arrival path schedules zero cancels. A",
        "fired timer pops every job within",
        f"{ProcessorSharingServer.COMPLETION_EPSILON} virtual cycles of",
        "the progress accumulator (absorbing integer rounding of the",
        "deadline, never force-popping an undone job -- a hypothesis",
        "property test pins this) and re-arms from current state.",
        "",
        "## Benchmarks",
        "",
        "`benchmarks/bench_engine_throughput.py` writes",
        "`BENCH_engine.json` (raw dispatch events/sec, core cycles/sec,",
        "evaluation wall-clock); `benchmarks/bench_e14_cluster.py` and",
        "`benchmarks/bench_e15_backends.py` write `BENCH_cluster.json`",
        "(cluster wall-clock and events/sec per engine-queue mode).",
        "`benchmarks/bench_smoke.py` re-measures the quick numbers in CI",
        "and fails on a >25% events/sec regression against the",
        "committed baselines.",
        "",
    ]
    return "\n".join(lines)


def coherence_markdown() -> str:
    import dataclasses as dc

    from repro.arch.costs import CostModel
    from repro.coherence import MODEL_NAMES
    from repro.obs.snapshot import NAMESPACE

    model = CostModel()
    lines = [
        "# The coherence subsystem",
        "",
        "`repro.coherence` prices the paper's two core primitives --",
        "monitor/mwait on any line (Section 3.1) and the TDT (Section",
        "3.2) -- once they leave the single free-coherence machine the",
        "seed models, and then scales them across the cluster fabric.",
        "Three layers:",
        "",
        "1. **Directory protocol**",
        "   (`repro.coherence.directory.DirectoryModel`): an MSI-style",
        "   per-line directory behind the watch bus. Arming a monitor",
        "   joins the line's sharer set; a store to a shared line pays",
        "   the directory visit plus one invalidation per sharer, and",
        "   each sharer's wakeup is *forwarded* with a per-position",
        "   delay instead of arriving in the write's cycle. The hook is",
        "   `WatchBus.coherence`; left at `None` (the default",
        "   everywhere) the bus reproduces the seed's flat behavior",
        "   byte-identically.",
        "2. **Cross-machine mwait**",
        "   (`repro.coherence.remote.RemoteStoreFabric`): RDMA-style",
        "   remote stores into per-node mailbox lines, carried by the",
        "   cluster `Fabric` and delivered as *real stores* through the",
        "   destination machine's watch bus -- so a parked ptid on node",
        "   A wakes at hardware cost when node B writes its mailbox,",
        "   instead of paying the callback path's software wakeup",
        "   chain (`distributed/rpc.py`).",
        "3. **Sharded TDT** (`repro.coherence.tdt_shard.ShardedTdt`):",
        "   per-node TDT partitions (vtid's home shard is `vtid % n`);",
        "   remote resolutions either hit a bounded per-caller cache or",
        "   cross the fabric; `invtid` broadcasts to every shard's",
        "   caches. Under fan-out, churn turns 40-cycle walks into",
        "   cross-fabric round trips (miss amplification).",
        "",
        "## Enabling it",
        "",
        "```python",
        "from repro.machine import build_machine",
        "machine = build_machine(coherence='directory')",
        "",
        "from repro.cluster import ClusterConfig",
        "config = ClusterConfig(backend='isa', coherence='directory')",
        "```",
        "",
        f"Registered models: {', '.join(f'`{n}`' for n in MODEL_NAMES)}.",
        "`null` runs the directory code path with every latency zero --",
        "synchronous delivery, so it is byte-identical to `off`; the CI",
        "identity gate compares exactly that. The `REPRO_COHERENCE` env",
        "var applies a model to every machine whose config leaves",
        "`coherence=None`.",
        "",
        "## Cost knobs",
        "",
        "All from the `CostModel` (see docs/cost-model.md):",
        "",
        "| constant | default (cycles) |",
        "|---|---|",
    ]
    for field in dc.fields(model):
        if field.name.startswith("dir_") or field.name == \
                "tdt_cross_shard_cycles":
            lines.append(f"| `{field.name}` "
                         f"| {getattr(model, field.name)} |")
    lines += [
        "",
        "Charging points: `monitor` pays `dir_arm_cycles`; a store or",
        "`faa` to a shared line pays `dir_inval_base_cycles +",
        "dir_inval_per_sharer_cycles x sharers`; the k-th sharer's",
        "wakeup is delivered after `dir_forward_cycles + k x",
        "dir_inval_per_sharer_cycles + dir_disarm_cycles`; `stop` of a",
        "waiting ptid pays the disarm retire.",
        "",
        "## Observability",
        "",
        "Metric namespaces (see docs/observability.md):",
        "",
        "| prefix | meaning |",
        "|---|---|",
    ]
    for prefix, meaning in NAMESPACE.items():
        if prefix.startswith("coherence."):
            lines.append(f"| `{prefix}` | {meaning} |")
    lines += [
        "",
        "Sources register where the machine lives, so a PDES shard",
        "worker ships its nodes' directory counters home and a sharded",
        "snapshot carries the same `coherence.*` namespaces as the",
        "single-engine run (round-trip tested in",
        "`tests/test_coherence.py`).",
        "",
        "## E17",
        "",
        "```",
        "python -m repro run E17 --quick",
        "```",
        "",
        "Three tables: wakeup latency vs sharer count (monotone in the",
        "sharer count by construction of the serialized forwards),",
        "remote-mwait vs rpc-callback wakeup p50/p99 across 2-32 nodes",
        "over identical fabric draws, and TDT miss amplification vs",
        "fan-out.",
        "",
    ]
    return "\n".join(lines)


GENERATORS = {
    "isa.md": isa_markdown,
    "engine.md": engine_markdown,
    "cost-model.md": cost_model_markdown,
    "experiments.md": experiments_markdown,
    "observability.md": observability_markdown,
    "cluster.md": cluster_markdown,
    "backends.md": backends_markdown,
    "coherence.md": coherence_markdown,
}


def main() -> None:
    DOCS.mkdir(exist_ok=True)
    for name, generate in GENERATORS.items():
        path = DOCS / name
        path.write_text(generate())
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
