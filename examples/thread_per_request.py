#!/usr/bin/env python
"""Thread-per-request with blocking I/O, on the ISA-level machine.

Section 2 ("Simpler Distributed Programming"): "Given a large number of
hardware threads, developers can assign one hardware thread per request
and use simple blocking I/O semantics without suffering from
significant thread scheduling overheads."

Sixteen request handlers each run the *straight-line blocking code* a
developer would want to write: compute, issue a remote call, block on
the reply (monitor/mwait on their own reply slot), compute, finish. A
simulated remote peer answers each request after a fixed network RTT.

Because the handlers are hardware threads, all sixteen RTTs overlap for
free -- no event loop, no scheduler, no callback inversion -- and the
wall clock approaches max(RTT, total CPU) instead of their sum.

Run:  python examples/thread_per_request.py
"""

from repro.machine import build_machine

HANDLERS = 16
PRE_WORK = 400      # cycles of compute before the remote call
POST_WORK = 300     # cycles after the reply
RTT = 20_000        # network round trip

_HANDLER_ASM = """
    work PRE_WORK
    movi r1, REQ
    movi r2, MYID
    st r1, 0, r2          ; issue the remote call
    movi r3, REPLY
    monitor r3
    mwait                 ; simple blocking semantics
    ld r4, r3, 0          ; the reply payload
    work POST_WORK
    movi r5, DONE
    movi r6, 1
    st r5, 0, r6
    halt
"""


def main() -> None:
    machine = build_machine(hw_threads_per_core=max(64, HANDLERS))
    requests = [machine.alloc(f"req{i}", 64) for i in range(HANDLERS)]
    replies = [machine.alloc(f"reply{i}", 64) for i in range(HANDLERS)]
    dones = [machine.alloc(f"done{i}", 64) for i in range(HANDLERS)]

    # the remote peer: replies RTT cycles after each request write
    for i in range(HANDLERS):
        def make_replier(index: int):
            def on_request(_info: dict) -> None:
                machine.engine.after(
                    RTT, machine.memory.store,
                    replies[index].base, 1_000 + index, "dma:net")
            return on_request
        machine.memory.watch_bus.subscribe(requests[i].base,
                                           make_replier(i), owner=f"peer{i}")

    finish_times = {}
    for i in range(HANDLERS):
        def make_done(index: int):
            def on_done(_info: dict) -> None:
                finish_times[index] = machine.engine.now
            return on_done
        machine.memory.watch_bus.subscribe(dones[i].base, make_done(i))
        machine.load_asm(i, _HANDLER_ASM, symbols={
            "REQ": requests[i].base, "REPLY": replies[i].base,
            "DONE": dones[i].base, "MYID": i,
            "PRE_WORK": PRE_WORK, "POST_WORK": POST_WORK,
        }, supervisor=False, name=f"handler{i}")
        machine.boot(i)

    machine.run(until=10_000_000)
    machine.check()

    wall = max(finish_times.values())
    serial = HANDLERS * (PRE_WORK + RTT + POST_WORK)
    total_cpu = HANDLERS * (PRE_WORK + POST_WORK)
    print("== thread-per-request, blocking I/O, 16 hardware threads ==")
    print(f"handlers finished : {len(finish_times)}/{HANDLERS}")
    print(f"wall clock        : {wall:,} cycles")
    print(f"serial execution  : {serial:,} cycles "
          f"({serial / wall:.1f}x slower)")
    print(f"lower bound       : ~{RTT + total_cpu:,} cycles "
          f"(one RTT + all CPU on a shared core)")
    print()
    replying = [machine.thread(i).wakeups for i in range(HANDLERS)]
    print(f"each handler blocked and woke exactly once: "
          f"{all(w == 1 for w in replying)}")
    print()
    print('"assign one hardware thread per request and use simple '
          'blocking I/O semantics"')


if __name__ == "__main__":
    main()
