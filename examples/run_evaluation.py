#!/usr/bin/env python
"""Run the full paper evaluation (E01-E13) and print every table.

This is the programmatic twin of ``pytest benchmarks/ --benchmark-only``.
With ``--markdown`` it emits the per-experiment sections EXPERIMENTS.md
embeds; with ``--quick`` it uses the small CI-sized workloads.

Run:  python examples/run_evaluation.py [--quick] [--markdown]
"""

import sys

from repro.experiments import all_experiments


def main() -> None:
    quick = "--quick" in sys.argv
    markdown = "--markdown" in sys.argv
    failures = []
    for experiment in all_experiments():
        result = experiment.run(quick=quick)
        if markdown:
            print(result.render_markdown())
            print()
        else:
            print(result.render())
            print()
        if not result.all_supported():
            failures.append(experiment.experiment_id)
    if failures:
        print(f"REFUTED claims in: {', '.join(failures)}", file=sys.stderr)
        sys.exit(1)
    if not markdown:
        print(f"All {len(all_experiments())} experiments support the "
              f"paper's claims.")


if __name__ == "__main__":
    main()
