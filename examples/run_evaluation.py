#!/usr/bin/env python
"""Run the full paper evaluation (E01-E16) and print every table.

This is the programmatic twin of ``pytest benchmarks/ --benchmark-only``.
With ``--markdown`` it emits the per-experiment sections EXPERIMENTS.md
embeds; with ``--quick`` it uses the small CI-sized workloads; with
``--parallel N`` the experiments fan across N worker processes (every
experiment is self-contained, so the output is identical to serial;
``--parallel 0`` uses one worker per CPU); with ``--metrics DIR`` each
experiment runs fully instrumented and writes one metrics-snapshot
JSON into DIR (identical whether serial or parallel).

Run:  python examples/run_evaluation.py [--quick] [--markdown]
          [--parallel N] [--metrics DIR]
"""

import argparse
import os
import sys

from repro.experiments.parallel import run_instrumented, run_parallel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--markdown", action="store_true")
    parser.add_argument("--parallel", type=int, default=1, metavar="N")
    parser.add_argument("--metrics", metavar="DIR", default=None,
                        dest="metrics_dir")
    args = parser.parse_args()
    workers = None if args.parallel == 0 else args.parallel
    if args.metrics_dir is not None:
        from repro.obs.snapshot import write_snapshot

        run = run_instrumented(quick=args.quick, workers=workers)
        results = run.results
        os.makedirs(args.metrics_dir, exist_ok=True)
        for experiment_id, snapshot in run.snapshots.items():
            write_snapshot(os.path.join(args.metrics_dir,
                                        f"{experiment_id}-metrics.json"),
                           snapshot)
    else:
        results = run_parallel(quick=args.quick, workers=workers)
    failures = []
    for result in results:
        if args.markdown:
            print(result.render_markdown())
            print()
        else:
            print(result.render())
            print()
        if not result.all_supported():
            failures.append(result.experiment_id)
    if failures:
        print(f"REFUTED claims in: {', '.join(failures)}", file=sys.stderr)
        sys.exit(1)
    if not args.markdown:
        print(f"All {len(results)} experiments support the "
              f"paper's claims.")


if __name__ == "__main__":
    main()
