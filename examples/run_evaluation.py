#!/usr/bin/env python
"""Run the full paper evaluation (E01-E13) and print every table.

This is the programmatic twin of ``pytest benchmarks/ --benchmark-only``.
With ``--markdown`` it emits the per-experiment sections EXPERIMENTS.md
embeds; with ``--quick`` it uses the small CI-sized workloads; with
``--parallel N`` the experiments fan across N worker processes (every
experiment is self-contained, so the output is identical to serial;
``--parallel 0`` uses one worker per CPU).

Run:  python examples/run_evaluation.py [--quick] [--markdown] [--parallel N]
"""

import argparse
import sys

from repro.experiments.parallel import run_parallel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--markdown", action="store_true")
    parser.add_argument("--parallel", type=int, default=1, metavar="N")
    args = parser.parse_args()
    results = run_parallel(
        quick=args.quick,
        workers=None if args.parallel == 0 else args.parallel)
    failures = []
    for result in results:
        if args.markdown:
            print(result.render_markdown())
            print()
        else:
            print(result.render())
            print()
        if not result.all_supported():
            failures.append(result.experiment_id)
    if failures:
        print(f"REFUTED claims in: {', '.join(failures)}", file=sys.stderr)
        sys.exit(1)
    if not args.markdown:
        print(f"All {len(results)} experiments support the "
              f"paper's claims.")


if __name__ == "__main__":
    main()
