#!/usr/bin/env python
"""A simulated datacenter service: fan-out, load balancing, hedging.

Section 2 ("Simpler Distributed Programming") argues that cheap
hardware threads make thread-per-request blocking I/O viable *at
datacenter scale* -- where a front-end fans each request out to many
shards and the response is only as fast as the slowest one.

This walks `repro.cluster` through that story in three acts:

1. a 16-node cluster at moderate load, hw-threads vs sw-threads, with
   fan-out 8: the software transition tax -- amplified by the fan-in
   worker pool every node keeps resident -- shows up as a p99 gap far
   wider than the per-node numbers suggest;
2. the load balancer menu: even the best sw-threads placement does not
   close the gap;
3. lossy links: with a 1% drop probability per message, fan-out
   multiplies the chance a request loses a shard -- hedged requests
   (a backup shard after a deadline) mask almost all of it.

Every number is deterministic: same seed, same bytes.

Run:  python examples/cluster_service.py
"""

from repro.cluster import ClusterConfig, DESIGNS, LinkSpec, run_cluster, scaled

NODES = 16
FANOUT = 8
SEED = 0xC0FFEE

BASE = ClusterConfig(nodes=NODES, design=DESIGNS["hw-threads"],
                     policy="random", fanout=FANOUT, load=0.06,
                     mean_service_cycles=5_000, segments=4,
                     rtt_cycles=20_000, requests=400)


def main() -> None:
    print(f"== act 1: the transition tax at scale "
          f"({NODES} nodes, fanout {FANOUT}) ==")
    cells = {}
    for name in ("hw-threads", "sw-threads"):
        result = run_cluster(scaled(BASE, design=DESIGNS[name]), seed=SEED)
        cells[name] = result.summary
        print(f"{name:11s}: p50 {cells[name]['p50']:>10,.0f}  "
              f"p99 {cells[name]['p99']:>10,.0f} cycles  "
              f"(completed {cells[name]['completed']})")
    ratio = cells["sw-threads"]["p99"] / cells["hw-threads"]["p99"]
    print(f"sw/hw p99 ratio   : {ratio:.2f}x  -- each node keeps "
          f"{BASE.threads_per_peer * NODES} worker threads resident,")
    print("and only sw-threads pays for that crowd on every transition")
    conserved = all(cells[name]["conserved"] for name in cells)
    print(f"conserved         : {conserved}  "
          f"(issued == completed + dropped + in-flight, every node)")

    print()
    print("== act 2: can the load balancer buy it back? ==")
    for policy in ("random", "round-robin", "jsq", "p2c"):
        row = {}
        for name in ("hw-threads", "sw-threads"):
            config = scaled(BASE, design=DESIGNS[name], policy=policy)
            row[name] = run_cluster(config, seed=SEED).summary["p99"]
        print(f"{policy:11s}: hw p99 {row['hw-threads']:>10,.0f}   "
              f"sw p99 {row['sw-threads']:>12,.0f}")
    print("no placement policy recovers the hw-threads distribution")

    print()
    print("== act 3: lossy links and hedged requests ==")
    lossy = scaled(BASE, link=LinkSpec(drop_prob=0.01))
    for label, hedge in (("hedging off", None),
                         ("hedging on ", 8 * BASE.rtt_cycles)):
        summary = run_cluster(scaled(lossy, hedge_after=hedge),
                              seed=SEED).summary
        print(f"{label}: completed {summary['completed']:>4}  "
              f"dropped {summary['dropped']:>3}  "
              f"hedges sent {summary['hedges']:>3}")
    print('"developers can assign one hardware thread per request" --')
    print("including one more for the hedge when a shard straggles")


if __name__ == "__main__":
    main()
