#!/usr/bin/env python
"""A microkernel file-system service called two ways (Section 2).

Clients call an fs service through (a) classic scheduler-mediated IPC
(trap, enqueue, scheduler, context switch -- each way) and (b) direct
hardware-thread start (rpush args, start the service ptid, mwait the
reply). Prints round-trip cost and latency under increasing call rates.

Run:  python examples/microkernel_fs.py
"""

from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.microkernel import DirectStartIpc, SchedulerIpc, ServiceClient
from repro.microkernel.services import filesystem_service
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.workloads import PoissonArrivals

CALLS = 400


def run_clients(mechanism: str, mean_gap: float):
    engine = Engine()
    costs = CostModel()
    ipc = (SchedulerIpc(engine, costs) if mechanism == "scheduler"
           else DirectStartIpc(engine, costs))
    client = ServiceClient(engine, ipc, filesystem_service(), "read",
                           PoissonArrivals(mean_gap),
                           RngStreams(11).stream(mechanism),
                           max_calls=CALLS)
    engine.run(max_events=30_000_000)
    return ipc, client


def main() -> None:
    costs = CostModel()
    engine = Engine()
    print("== null-call round trip ==")
    rtt = Table(["mechanism", "RTT (cycles)", "ns @3GHz"])
    for name, ipc in (("scheduler IPC", SchedulerIpc(engine, costs)),
                      ("direct ptid start", DirectStartIpc(engine, costs))):
        rtt.add_row(name, ipc.rtt_cycles(0), ipc.rtt_cycles(0) / 3.0)
    print(rtt.render())

    print()
    print("== fs.read latency under load ==")
    table = Table(["mean gap (cyc)", "scheduler p99", "direct p99",
                   "speedup"])
    for gap in (30_000, 10_000, 5_000):
        _ipc, sched_client = run_clients("scheduler", gap)
        _ipc, direct_client = run_clients("direct", gap)
        sched_p99 = sched_client.recorder.pct(99)
        direct_p99 = direct_client.recorder.pct(99)
        table.add_row(gap, sched_p99, direct_p99,
                      f"{sched_p99 / direct_p99:.1f}x")
    print(table.render())
    print()
    print('"There is no need to move into kernel space and invoke the '
          'scheduler."')


if __name__ == "__main__":
    main()
