#!/usr/bin/env python
"""An RX-processing server three ways: interrupts, polling, mwait.

The Section 2 scenario ("Fast I/O without Inefficient Polling"): a NIC
delivers a Poisson packet stream; the same stream is served by the
three designs and the latency/waste trade-off is printed.

Run:  python examples/echo_server_io.py [load]
"""

import sys

from repro.analysis.tables import Table
from repro.devices import Nic
from repro.kernel import InterruptIoServer, MwaitIoServer, PollingIoServer
from repro.machine import build_machine
from repro.workloads import PoissonArrivals

SERVICE_CYCLES = 800
PACKETS = 500


def serve(design: str, load: float):
    machine = build_machine(seed=42)
    nic = Nic(machine.engine, machine.memory, machine.dma)
    server = {
        "interrupt": InterruptIoServer,
        "polling": PollingIoServer,
        "mwait": MwaitIoServer,
    }[design](machine.engine, machine.costs)

    def on_tail_write(_info: dict) -> None:
        while True:
            packet = nic.rx.consume()
            if packet is None:
                return
            server.deliver(packet["seq"], SERVICE_CYCLES)

    machine.memory.watch_bus.subscribe(nic.rx.tail_addr, on_tail_write)
    nic.start_rx(PoissonArrivals(SERVICE_CYCLES / load),
                 machine.rngs.stream("rx"), max_packets=PACKETS)
    machine.run(until=int(PACKETS * SERVICE_CYCLES / load * 4) + 2_000_000)
    if isinstance(server, PollingIoServer):
        server.finalize()
    return machine, server.stats()


def main() -> None:
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    table = Table(["design", "packets", "p50 (cyc)", "p99 (cyc)",
                   "wasted core %"],
                  title=f"{PACKETS} packets at load {load}, "
                        f"{SERVICE_CYCLES}-cycle service")
    for design in ("interrupt", "polling", "mwait"):
        machine, stats = serve(design, load)
        table.add_row(design, stats.completed, stats.p50_latency,
                      stats.p99_latency,
                      100.0 * stats.wasted_cycles / machine.engine.now)
    print(table.render())
    print()
    print("The paper's triangle: mwait matches polling's latency while")
    print("wasting (almost) no core, and beats the interrupt path by the")
    print("cost of the IRQ-entry + scheduler + context-switch chain.")


if __name__ == "__main__":
    main()
